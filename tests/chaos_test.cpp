// Seeded chaos soak for the recovery ladder (fault builds only): N-rank BFS
// clusters under chaos_from_seed plans — 1–3 specs mixing transient and
// permanent kinds with 1–2 shots each — across rank counts {2, 3, 4} and a
// spread of seeds, some with file-backed checkpoint stores. Every schedule
// is replayable (same seed, same plan) and runs under a watchdog, so a
// deadlocked recovery path aborts instead of hanging the suite.
//
// The contract each run must hold, whatever the plan drew:
//  * no deadlock (watchdog) and no std::terminate;
//  * when any spec fired, the ladder accounting is coherent: a valid origin
//    report, epochs >= 1 with one recovery_ms sample per epoch, and the
//    deepest rung in [1, 3];
//  * when the run completed, BFS levels (min-combine, order-independent) are
//    bit-identical to the fault-free answer — whichever rung finished the
//    job — and lost work stays under the checkpoint interval for every
//    recovery epoch (lost_supersteps is the max over epochs);
//  * the ONLY tolerated non-completion is the last-resort rung itself being
//    shot down by a fresh injected fault — there is nothing below rung 3 to
//    fall to, and the failure must say so rather than crash.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/apps/bfs.hpp"
#include "src/apps/reference.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/fault/fault_injection.hpp"
#include "src/gen/generators.hpp"
#include "tests/watchdog.hpp"

namespace {

using namespace phigraph;

#if !PG_FAULTS_ENABLED

TEST(ChaosSoak, SkippedWithoutFaultBuild) {
  GTEST_SKIP() << "the chaos soak requires -DPHIGRAPH_FAULTS=ON "
                  "(the `faults` preset)";
}

#else

constexpr int kInterval = 2;
constexpr int kMaxFaultSuperstep = 6;

core::EngineConfig chaos_cfg(int rank, const std::string& ckpt_dir) {
  core::EngineConfig c;
  // Alternate locking/pipelining so both phase machines soak.
  c.mode = rank % 2 == 0 ? core::ExecMode::kLocking
                         : core::ExecMode::kPipelining;
  c.simd_bytes = rank % 2 == 0 ? simd::kCpuSimdBytes : simd::kMicSimdBytes;
  c.threads = 2;
  c.movers = 1;
  c.sched_chunk = 16;
  c.queue_capacity = 256;
  c.checkpoint.interval = kInterval;
  if (!ckpt_dir.empty()) {
    c.checkpoint.file_backed = true;
    c.checkpoint.dir = ckpt_dir;
  }
  c.retry.backoff_ms = 0;  // retry immediately; the soak is about coverage
  return c;
}

void soak(int nranks, std::uint64_t seed, bool file_backed) {
  SCOPED_TRACE("nranks=" + std::to_string(nranks) + " seed=" +
               std::to_string(seed) +
               (file_backed ? " file-backed" : " in-memory"));
  const auto g = gen::pokec_like(/*n=*/1000, /*m=*/8000, /*seed=*/17);
  const auto classic = apps::classic_bfs(g, 0);

  std::string dir;
  if (file_backed) {
    dir = (std::filesystem::temp_directory_path() /
           ("pg_chaos_r" + std::to_string(nranks) + "_s" +
            std::to_string(seed)))
              .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }

  const auto plan =
      fault::FaultPlan::chaos_from_seed(seed, kMaxFaultSuperstep, nranks);
  fault::ScopedPlan armed(plan);

  std::vector<int> owner(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    owner[v] = static_cast<int>(v) % nranks;
  std::vector<core::EngineConfig> cfgs;
  for (int r = 0; r < nranks; ++r) cfgs.push_back(chaos_cfg(r, dir));

  core::ClusterEngine<apps::Bfs> ce(g, owner, apps::Bfs(0), cfgs);
  const auto res = ce.run();

  std::printf("   [chaos] N=%d seed=%llu%s: fired=%llu rung=%llu epochs=%llu "
              "attempts=%llu lost=%llu completed=%d\n",
              nranks, static_cast<unsigned long long>(seed),
              file_backed ? " (file)" : "",
              static_cast<unsigned long long>(res.failover.failed_over),
              static_cast<unsigned long long>(res.failover.rung),
              static_cast<unsigned long long>(res.failover.epochs),
              static_cast<unsigned long long>(res.failover.attempts),
              static_cast<unsigned long long>(res.failover.lost_supersteps),
              res.completed ? 1 : 0);

  if (res.failover.failed_over) {
    EXPECT_TRUE(res.fault.valid()) << "fired plan must leave an origin report";
    EXPECT_GE(res.failover.epochs, 1u);
    EXPECT_EQ(res.failover.epoch_recovery_ms.size(), res.failover.epochs);
    EXPECT_GE(res.failover.rung, 1u);
    EXPECT_LE(res.failover.rung, 3u);
  } else {
    // The drawn sites were never reached (e.g. a superstep past BFS
    // termination): a plain fault-free run.
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.failover.epochs, 0u);
  }
  if (res.completed) {
    if (res.failover.failed_over)
      EXPECT_LT(res.failover.lost_supersteps,
                static_cast<std::uint64_t>(kInterval));
    ASSERT_EQ(res.global_values.size(), classic.size());
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(res.global_values[v], classic[v]) << "vertex " << v;
  } else {
    // Only the bottom rung may sink the run: an injected fault inside the
    // single-device rerun has nothing left to fall back to.
    EXPECT_NE(res.fault.what.find("recovery also failed"), std::string::npos)
        << res.fault.to_string();
  }

  if (!dir.empty()) std::filesystem::remove_all(dir);
}

class ChaosSoak : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSoak, SeededMixedFaultsDegradeGracefully) {
  phigraph::testing::Watchdog dog(std::chrono::seconds(480));
  const int nranks = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    soak(nranks, seed, /*file_backed=*/false);
  // A couple of file-backed schedules per rank count: the crash-consistent
  // write path (temp + fsync + rename) rides the same recovery ladder.
  soak(nranks, 9, /*file_backed=*/true);
  soak(nranks, 10, /*file_backed=*/true);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ChaosSoak, ::testing::Values(2, 3, 4),
                         [](const ::testing::TestParamInfo<int>& pi) {
                           return "N" + std::to_string(pi.param);
                         });

#endif  // PG_FAULTS_ENABLED

}  // namespace
