// Message-combiner tests (paper §IV-C generalized to N ranks).
//
// Sender-side combining folds same-destination remote messages into one
// wire message before the all-to-all exchange. Two promises are checked:
//
//  1. Transparency: a combined run is bit-identical to an uncombined run of
//     the same cluster. With combining off the receiver pre-folds each
//     inbound batch in arrival order, which — per-rank message generation
//     being deterministic — reproduces the sender-side fold exactly, so even
//     PageRank's order-dependent float sums survive the comparison (with a
//     single worker per rank pinning the generation order).
//  2. Payoff: on a power-law graph the combined run ships strictly fewer
//     exchange bytes for the same generated remote messages.
//
// The audit build additionally memcmp-checks that a program declaring a
// kSum/kMin combiner really is commutative on the message pairs it folds;
// a deliberately order-dependent combiner must abort with a diagnostic.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/pagerank.hpp"
#include "src/apps/sssp.hpp"
#include "src/common/audit.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/graph/csr.hpp"
#include "src/partition/partition.hpp"
#include "watchdog.hpp"

namespace {

using namespace phigraph;
using core::EngineConfig;
using core::ExecMode;

graph::Csr power_law_graph() {
  auto g = gen::pokec_like(/*n=*/800, /*m=*/4800, /*seed=*/0xc0fe);
  gen::add_random_weights(g, 0xbeef);
  return g;
}

std::vector<EngineConfig> cluster_cfgs(int nranks, bool combine, int threads,
                                       int max_supersteps = 0) {
  EngineConfig cfg;
  cfg.mode = ExecMode::kLocking;
  cfg.threads = threads;
  cfg.combine_remote = combine;
  if (max_supersteps > 0) cfg.max_supersteps = max_supersteps;
  return std::vector<EngineConfig>(static_cast<std::size_t>(nranks), cfg);
}

struct ClusterBytes {
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_remote = 0;
  std::uint64_t msgs_received = 0;
};

ClusterBytes bytes_of(const std::vector<core::RunResult>& ranks) {
  ClusterBytes out;
  for (const auto& r : ranks)
    for (const auto& c : r.trace) {
      out.bytes_sent += c.bytes_sent;
      out.msgs_remote += c.msgs_remote;
      out.msgs_received += c.msgs_received;
    }
  return out;
}

template <typename Program>
void check_combining_transparent(const graph::Csr& g, const Program& prog,
                                 int nranks, int threads,
                                 int max_supersteps = 0) {
  const auto owner = partition::round_robin_partition_k(
      g, partition::RankWeights(static_cast<std::size_t>(nranks), 1));
  core::ClusterEngine<Program> combined(
      g, owner, prog, cluster_cfgs(nranks, true, threads, max_supersteps));
  core::ClusterEngine<Program> raw(
      g, owner, prog, cluster_cfgs(nranks, false, threads, max_supersteps));
  const auto rc = combined.run();
  const auto rr = raw.run();
  ASSERT_TRUE(rc.completed && rr.completed) << "ranks=" << nranks;
  for (int r = 0; r < nranks; ++r)
    EXPECT_TRUE(combined.engine(r).combining_remote())
        << "kSum/kMin program with combine_remote on must combine";
  ASSERT_EQ(rc.global_values.size(), rr.global_values.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(rc.global_values[v], rr.global_values[v])
        << "ranks=" << nranks << " vertex " << v
        << ": combining changed the result";

  const auto bc = bytes_of(rc.ranks);
  const auto br = bytes_of(rr.ranks);
  // Same generated remote traffic, strictly cheaper wire bytes: a power-law
  // graph guarantees multiple same-destination messages per superstep.
  EXPECT_EQ(bc.msgs_remote, br.msgs_remote) << "ranks=" << nranks;
  EXPECT_GT(bc.msgs_remote, 0u) << "ranks=" << nranks;
  EXPECT_LT(bc.bytes_sent, br.bytes_sent)
      << "ranks=" << nranks << ": combining saved no bytes";
  EXPECT_LT(bc.msgs_received, br.msgs_received) << "ranks=" << nranks;
}

TEST(Combiner, MinCombineBitIdenticalAndFewerBytes) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(120));
  const auto g = power_law_graph();
  for (int nranks : {2, 3, 4})
    check_combining_transparent(g, apps::Sssp(0), nranks, /*threads=*/3);
}

// PageRank's sum combiner is float addition — order-dependent — so the
// transparency claim needs the deterministic single-worker configuration
// (see the header comment). The byte saving is the interesting part: every
// high-in-degree vertex collapses its whole remote fan-in to one message.
TEST(Combiner, SumCombinePageRankBitIdenticalAndFewerBytes) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(120));
  const auto g = power_law_graph();
  for (int nranks : {2, 4})
    check_combining_transparent(g, apps::PageRank{}, nranks, /*threads=*/1,
                                /*max_supersteps=*/8);
}

// A program that opts out (no kCombiner declaration ⇒ kCustom historical
// default) is unaffected by combine_remote=false; one that declares kNone
// must never combine. Covered implicitly elsewhere; here: the flag alone
// does not disable combining for declared programs.
TEST(Combiner, FlagAndKindGateCombining) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(60));
  const auto g = power_law_graph();
  const auto owner = partition::round_robin_partition_k(g, {1, 1});
  core::ClusterEngine<apps::Sssp> on(g, owner, apps::Sssp(0),
                                     cluster_cfgs(2, true, 2));
  core::ClusterEngine<apps::Sssp> off(g, owner, apps::Sssp(0),
                                      cluster_cfgs(2, false, 2));
  EXPECT_TRUE(on.engine(0).combining_remote());
  EXPECT_FALSE(off.engine(0).combining_remote());
}

// ---- audit build: commutativity contract ------------------------------------

// Deliberately broken program: declares a kSum combiner (audited as
// commutative) whose fold is order-dependent. SSSP messages carry distinct
// random-weight distances, so the first same-destination pair the engine
// folds yields combine(a,b) != combine(b,a) and the audit must abort.
struct NonCommutativeSssp : apps::Sssp {
  using apps::Sssp::Sssp;
  static constexpr core::CombinerKind kCombiner = core::CombinerKind::kSum;
  [[nodiscard]] float combine(float a, float b) const noexcept {
    return a - b;
  }
};

TEST(CombinerAudit, NonCommutativeCombinerDies) {
#if PG_AUDIT_ENABLED
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto g = power_law_graph();
  const auto owner = partition::round_robin_partition_k(g, {1, 1});
  EXPECT_DEATH(
      {
        core::ClusterEngine<NonCommutativeSssp> ce(
            g, owner, NonCommutativeSssp(0),
            cluster_cfgs(2, true, 2, /*max_supersteps=*/4));
        (void)ce.run();
      },
      "combiner-commutativity");
#else
  GTEST_SKIP() << "audit layer not compiled in (use the audit preset)";
#endif
}

}  // namespace
