// SPSC queue stress: one producer and one consumer hammer a small ring with
// randomized stall injection, verifying the FIFO contract (every item
// arrives exactly once, in order) over millions of operations. The point of
// the stalls is to shake out memory-ordering bugs: a pause at a random
// point shifts which load observes which store, so a missing acquire/release
// pair that happens to work in the steady state gets caught when the timing
// wobbles. Run under TSan (the tsan preset includes this suite) the same
// battery doubles as a data-race proof of the two-index protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/rng.hpp"
#include "src/pipeline/spsc_queue.hpp"
#include "watchdog.hpp"

namespace {

using namespace phigraph;
using pipeline::SpscQueue;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::uint64_t kItems = 200'000;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr std::uint64_t kItems = 200'000;
#else
constexpr std::uint64_t kItems = 2'000'000;
#endif
#else
constexpr std::uint64_t kItems = 2'000'000;
#endif

// Occasionally burn a few cycles (or yield) to move the producer/consumer
// phase relationship around. Pure spinning keeps both threads in lockstep;
// the yields force genuine full-queue and empty-queue episodes.
void maybe_stall(Rng& rng) {
  const auto roll = rng.below(64);
  if (roll == 0) {
    std::this_thread::yield();
  } else if (roll < 4) {
    for (volatile int spin = 0; spin < static_cast<int>(rng.below(200)); ++spin) {
    }
  }
}

void run_stress(std::size_t capacity, std::uint64_t seed) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(240));
  SpscQueue<std::uint64_t> q(capacity);

  std::atomic<std::uint64_t> full_spins{0};
  std::thread producer([&] {
    Rng rng(seed);
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!q.try_push(i)) {
        full_spins.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
      maybe_stall(rng);
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t order_errors = 0;
  std::uint64_t size_errors = 0;
  Rng rng(seed ^ 0xbadc0ffeull);
  while (expected < kItems) {
    // The occupancy snapshot races with the producer, but must stay within
    // the ring bounds at every instant.
    if (q.size() > q.capacity()) ++size_errors;
    std::uint64_t got;
    if (rng.below(4) == 0) {
      // Batch path: the mover's drain().
      q.drain([&](std::uint64_t item) {
        if (item != expected) ++order_errors;
        ++expected;
      });
    } else if (q.try_pop(got)) {
      if (got != expected) ++order_errors;
      ++expected;
    }
    maybe_stall(rng);
  }
  producer.join();

  EXPECT_EQ(order_errors, 0u);
  EXPECT_EQ(size_errors, 0u);
  EXPECT_EQ(expected, kItems);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // A ring this small against this many items must have hit backpressure —
  // otherwise the test never exercised the full-queue path it exists for.
  if (capacity <= 16) EXPECT_GT(full_spins.load(), 0u);
}

TEST(SpscStress, TinyRingMaximizesBackpressure) { run_stress(4, 0x51ee7); }

TEST(SpscStress, SmallRing) { run_stress(16, 0xfeedface); }

TEST(SpscStress, ProductionSizedRing) { run_stress(1024, 0xabad1dea); }

// Alternating near-empty operation: the consumer keeps up, so every push is
// immediately visible to a pop that races it — the hardest case for the
// producer's release store / consumer's acquire load pairing.
TEST(SpscStress, LockstepHandoff) {
  phigraph::testing::Watchdog wd(std::chrono::seconds(240));
  SpscQueue<std::uint64_t> q(2);  // a single usable slot
  const std::uint64_t items = kItems / 4;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < items; ++i)
      while (!q.try_push(i)) std::this_thread::yield();
  });
  for (std::uint64_t expected = 0; expected < items;) {
    std::uint64_t got;
    if (q.try_pop(got)) {
      ASSERT_EQ(got, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
    ASSERT_LE(q.size(), 1u);
  }
  producer.join();
  EXPECT_TRUE(q.empty());
}

}  // namespace
