// Direction-optimizing traversal: the alpha/beta switch rule, the pull
// kernel's counter contract, the mode-independence of the direction
// schedule, and the sim/tune layers that predict and learn the thresholds
// from a forced-push probe trace.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/apps/bfs.hpp"
#include "src/apps/connected_components.hpp"
#include "src/apps/sssp.hpp"
#include "src/core/direction.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/sim/device_spec.hpp"
#include "src/sim/model.hpp"
#include "src/tune/autotune.hpp"

namespace {

using namespace phigraph;
using core::Direction;
using core::DirectionMode;
using core::DirectionPolicy;
using core::EngineConfig;
using core::ExecMode;

EngineConfig cfg(ExecMode mode, DirectionMode dir) {
  EngineConfig c;
  c.mode = mode;
  c.direction_mode = dir;
  c.threads = 3;
  c.movers = 2;
  c.simd_bytes = 64;
  return c;
}

graph::Csr social_graph() {
  auto g = gen::pokec_like(4000, 60000, 29);
  gen::add_random_weights(g, 11);
  return g;
}

// ---------------------------------------------------------------------------
// The policy itself.
// ---------------------------------------------------------------------------

TEST(DirectionPolicy, AlphaBetaRuleWithHysteresis) {
  DirectionPolicy p;
  p.alpha = 14.0;
  p.beta = 24.0;
  const std::uint64_t n = 2400, m = 100000;

  // Tiny frontier, almost everything unexplored: push.
  EXPECT_EQ(p.decide(1, 10, m, n), Direction::kPush);
  // Frontier edge mass above unexplored/alpha: switch to pull.
  EXPECT_EQ(p.decide(500, 9000, 90000, n), Direction::kPull);
  // Hysteresis: the same frontier that was too small to *trigger* pull does
  // not immediately revert it — only the beta rule does.
  EXPECT_EQ(p.decide(400, 10, 50000, n), Direction::kPull);
  // Frontier below n/beta (= 100): back to push.
  EXPECT_EQ(p.decide(99, 10, 50000, n), Direction::kPush);

  p.reset();
  EXPECT_EQ(p.current, Direction::kPush);
}

TEST(DirectionPolicy, ZeroThresholdsDisableSwitching) {
  DirectionPolicy never_pull;
  never_pull.alpha = 0.0;  // push->pull trigger disabled
  EXPECT_EQ(never_pull.decide(1000, 1000000, 0, 1000), Direction::kPush);

  DirectionPolicy sticky_pull;
  sticky_pull.alpha = 1e9;  // switches to pull immediately...
  sticky_pull.beta = 0.0;   // ...and the pull->push trigger is disabled
  EXPECT_EQ(sticky_pull.decide(1, 1, 1000, 1000), Direction::kPull);
  EXPECT_EQ(sticky_pull.decide(0, 0, 0, 1000), Direction::kPull);
}

// ---------------------------------------------------------------------------
// Counter contract of a live auto run.
// ---------------------------------------------------------------------------

TEST(Direction, AutoRunCounterContract) {
  const auto g = social_graph();
  const auto res =
      core::run_single(g, apps::Bfs{0}, cfg(ExecMode::kLocking, DirectionMode::kAuto));
  std::uint64_t pulls = 0;
  for (const auto& c : res.run.trace) {
    EXPECT_EQ(c.push_supersteps + c.pull_supersteps, 1u);
    EXPECT_EQ(c.dense_supersteps + c.sparse_supersteps + c.pull_supersteps, 1u);
    if (c.pull_supersteps > 0) {
      ++pulls;
      // Push counters stay push-only on a pull superstep.
      EXPECT_EQ(c.edges_scanned, 0u);
      EXPECT_EQ(c.msgs_local, 0u);
      EXPECT_EQ(c.groups_dirty, 0u);
      EXPECT_EQ(c.queue_pushes, 0u);
      EXPECT_GT(c.pull_edges_scanned, 0u);
      // Pull supersteps report the frontier they were decided on.
      EXPECT_EQ(c.active_vertices, c.frontier_size);
    } else {
      EXPECT_EQ(c.pull_edges_scanned, 0u);
    }
  }
  // A power-law BFS must actually take the bottom-up path in its dense
  // middle, and the BFS first-hit early exit must fire there.
  EXPECT_GT(pulls, 0u);
  const auto t = metrics::totals(res.run.trace);
  EXPECT_GT(t.pull_early_exits, 0u);
  EXPECT_GE(t.direction_flips, 2u);  // push -> pull -> push at minimum
}

// The direction schedule and the pull kernel's work are structural: every
// execution mode probes the same in-edges and takes the same early exits.
TEST(Direction, PullScheduleIsModeIndependent) {
  const auto g = social_graph();
  const apps::Sssp prog(0);
  const auto omp =
      core::run_single(g, prog, cfg(ExecMode::kOmpStyle, DirectionMode::kForcePull));
  const auto lock =
      core::run_single(g, prog, cfg(ExecMode::kLocking, DirectionMode::kForcePull));
  const auto pipe =
      core::run_single(g, prog, cfg(ExecMode::kPipelining, DirectionMode::kForcePull));
  EXPECT_EQ(omp.values, lock.values);
  EXPECT_EQ(omp.values, pipe.values);
  ASSERT_EQ(omp.run.trace.size(), lock.run.trace.size());
  ASSERT_EQ(omp.run.trace.size(), pipe.run.trace.size());
  for (std::size_t s = 0; s < omp.run.trace.size(); ++s) {
    const auto& a = omp.run.trace[s];
    const auto& b = lock.run.trace[s];
    const auto& c = pipe.run.trace[s];
    EXPECT_EQ(a.pull_supersteps, b.pull_supersteps);
    EXPECT_EQ(a.pull_supersteps, c.pull_supersteps);
    EXPECT_EQ(a.pull_edges_scanned, b.pull_edges_scanned);
    EXPECT_EQ(a.pull_edges_scanned, c.pull_edges_scanned);
    EXPECT_EQ(a.pull_early_exits, b.pull_early_exits);
    EXPECT_EQ(a.pull_early_exits, c.pull_early_exits);
    EXPECT_EQ(a.verts_updated, b.verts_updated);
    EXPECT_EQ(a.verts_updated, c.verts_updated);
  }
}

// ---------------------------------------------------------------------------
// Predicted vs actual direction mix: the sim replays the engine's policy
// from a forced-push probe and must land on the same schedule the auto
// engine takes.
// ---------------------------------------------------------------------------

TEST(Direction, PredictedMixMatchesAutoEngine) {
  const auto g = social_graph();
  const apps::Bfs prog{0};
  const auto probe =
      core::run_single(g, prog, cfg(ExecMode::kLocking, DirectionMode::kForcePush));
  const auto live =
      core::run_single(g, prog, cfg(ExecMode::kLocking, DirectionMode::kAuto));
  EXPECT_EQ(probe.values, live.values);
  ASSERT_EQ(probe.run.trace.size(), live.run.trace.size());

  const auto mix = sim::predict_direction_mix(
      probe.run.trace, g.num_vertices(), g.num_edges());
  ASSERT_EQ(mix.directions.size(), live.run.trace.size());
  for (std::size_t s = 0; s < live.run.trace.size(); ++s) {
    const bool pulled = live.run.trace[s].pull_supersteps > 0;
    EXPECT_EQ(mix.directions[s] == Direction::kPull, pulled)
        << "superstep " << s;
  }
  const auto t = metrics::totals(live.run.trace);
  EXPECT_EQ(mix.pull_supersteps, t.pull_supersteps);
  EXPECT_EQ(mix.push_supersteps, t.push_supersteps);
  EXPECT_EQ(mix.flips, t.direction_flips);
  EXPECT_GT(mix.pull_supersteps, 0u);
}

// ---------------------------------------------------------------------------
// Threshold tuning: replaying the probe through the model must never pick
// thresholds modeled slower than the all-push baseline, and on a power-law
// BFS the MIC profile should find a mixed schedule that is strictly cheaper.
// ---------------------------------------------------------------------------

TEST(Direction, TunedThresholdsNeverWorseThanPush) {
  const auto g = social_graph();
  const auto probe = core::run_single(
      g, apps::Bfs{0}, cfg(ExecMode::kLocking, DirectionMode::kForcePush));

  sim::ExecProfile prof;
  prof.mode = ExecMode::kLocking;
  prof.threads = 61;
  prof.lanes = 16;
  prof.num_vertices = g.num_vertices();
  const auto dev = sim::xeon_phi_se10p();

  const auto choice = tune::tune_direction_thresholds(
      probe.run.trace, g.num_vertices(), g.num_edges(), dev, prof);
  EXPECT_GT(choice.push_only_seconds, 0.0);
  EXPECT_LE(choice.modeled_seconds, choice.push_only_seconds);
  if (choice.alpha > 0.0) {
    // The winning thresholds must actually produce pull supersteps.
    const auto mix =
        sim::predict_direction_mix(probe.run.trace, g.num_vertices(),
                                   g.num_edges(), choice.alpha, choice.beta);
    EXPECT_GT(mix.pull_supersteps, 0u);
  }
}

}  // namespace
