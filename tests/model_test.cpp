// PHIGRAPH_MODEL schedule-exploration tests over the production lock-free
// core. Each test runs the real data structure (SpscQueue, AllToAll,
// CheckpointStore, RemoteBuffer, SpinLock) under the cooperative model
// scheduler, explores >= 10,000 distinct interleavings for the three
// headline protocols, and requires zero race reports and zero invariant
// violations across all of them.
//
// These tests are meaningful only in the `model` preset (PHIGRAPH_MODEL);
// in every other build they collapse to a single skip so the default test
// run stays unchanged.
#include <gtest/gtest.h>

#include "src/common/sync.hpp"

#if PG_MODEL_ENABLED

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/exchange.hpp"
#include "src/comm/remote_buffer.hpp"
#include "src/fault/checkpoint.hpp"
#include "src/model/model.hpp"
#include "src/pipeline/spsc_queue.hpp"
#include "src/sched/spinlock.hpp"

namespace {

using namespace phigraph;

// The acceptance bar for the headline protocols: at least this many
// *distinct* schedules (not merely executions) with a budget comfortably
// above it so the explorer can stop at the target.
constexpr std::size_t kDistinctTarget = 10000;

model::Options coverage_options() {
  model::Options opt;
  opt.iterations = 40000;
  opt.target_distinct = kDistinctTarget + 500;
  opt.preemption_bound = 4;
  return opt;
}

model::Options smoke_options() {
  model::Options opt;
  opt.iterations = 3000;
  opt.preemption_bound = 4;
  return opt;
}

#define PG_MODEL_EXPECT_CLEAN(stats)                                      \
  EXPECT_EQ((stats).failures, 0)                                          \
      << "first failure: " << (stats).first_failure                       \
      << " (replay seed " << (stats).first_failure_seed << ")"

// ---- SpscQueue ------------------------------------------------------------

TEST(ModelSpsc, ProducerConsumerExploresTenThousandSchedules) {
  const model::Options opt = coverage_options();
  const model::ExploreStats stats = model::explore(opt, [] {
    struct State {
      pipeline::SpscQueue<int> q{4};  // 3 usable slots: forces full/empty
      std::vector<int> popped;
    };
    auto st = std::make_shared<State>();
    model::TestCase tc;
    tc.threads.push_back([st] {
      for (int i = 0; i < 6; ++i)
        while (!st->q.try_push(i)) sync::thread_yield();
    });
    tc.threads.push_back([st] {
      int out = -1;
      for (int i = 0; i < 6; ++i) {
        while (!st->q.try_pop(out)) sync::thread_yield();
        st->popped.push_back(out);
      }
    });
    tc.finally = [st]() -> std::string {
      if (st->popped.size() != 6) return "consumer did not pop 6 items";
      for (int i = 0; i < 6; ++i)
        if (st->popped[static_cast<std::size_t>(i)] != i)
          return "FIFO order violated at position " + std::to_string(i);
      if (!st->q.empty()) return "queue not empty after full drain";
      return "";
    };
    return tc;
  });
  PG_MODEL_EXPECT_CLEAN(stats);
  EXPECT_GE(stats.distinct_schedules, kDistinctTarget)
      << "after " << stats.executions << " executions";
}

// ---- AllToAll deposit / drain ---------------------------------------------

TEST(ModelAllToAll, ThreeRanksTwoRoundsExploresTenThousandSchedules) {
  constexpr int kRanks = 3;
  constexpr int kRounds = 2;
  const model::Options opt = coverage_options();
  const model::ExploreStats stats = model::explore(opt, [] {
    struct State {
      comm::AllToAll<int> x{kRanks};
      // One error slot per rank: each virtual thread writes only its own.
      std::array<std::string, kRanks> errors;
    };
    auto st = std::make_shared<State>();
    model::TestCase tc;
    for (int rank = 0; rank < kRanks; ++rank) {
      tc.threads.push_back([st, rank] {
        for (int round = 0; round < kRounds; ++round) {
          std::vector<int> out(kRanks, 0);
          for (int dst = 0; dst < kRanks; ++dst)
            out[static_cast<std::size_t>(dst)] =
                1000 * round + 100 * rank + dst;
          auto r = st->x.exchange_for(rank, std::move(out),
                                      std::chrono::hours(1));
          if (r.status != comm::ExchangeStatus::kOk) {
            st->errors[static_cast<std::size_t>(rank)] =
                "rank " + std::to_string(rank) + " round " +
                std::to_string(round) + ": " +
                comm::exchange_status_name(r.status);
            return;
          }
          for (int src = 0; src < kRanks; ++src) {
            if (src == rank) continue;
            const int want = 1000 * round + 100 * src + rank;
            if (r.values[static_cast<std::size_t>(src)] != want) {
              st->errors[static_cast<std::size_t>(rank)] =
                  "rank " + std::to_string(rank) + " round " +
                  std::to_string(round) + ": wrong value from rank " +
                  std::to_string(src);
              return;
            }
          }
        }
      });
    }
    tc.finally = [st]() -> std::string {
      for (const std::string& e : st->errors)
        if (!e.empty()) return e;
      return "";
    };
    return tc;
  });
  PG_MODEL_EXPECT_CLEAN(stats);
  EXPECT_GE(stats.distinct_schedules, kDistinctTarget)
      << "after " << stats.executions << " executions";
}

// ---- Checkpoint slot alternation ------------------------------------------

namespace {
fault::CheckpointFrame make_frame(int superstep) {
  fault::CheckpointFrame f;
  f.superstep = superstep;
  f.values.assign(8, static_cast<std::uint8_t>(superstep));
  f.active.assign(4, static_cast<std::uint8_t>(superstep * 3));
  f.frontier = {static_cast<vid_t>(superstep)};
  f.seal();
  return f;
}
}  // namespace

TEST(ModelCheckpoint, WriterVsReaderExploresTenThousandSchedules) {
  constexpr int kFrames = 4;
  const model::Options opt = coverage_options();
  const model::ExploreStats stats = model::explore(opt, [] {
    struct State {
      fault::CheckpointStore store{fault::CheckpointConfig{1, false, ""}, 0};
      sync::Atomic<int> done{0};
      std::string error;  // written only by the reader thread
    };
    auto st = std::make_shared<State>();
    model::TestCase tc;
    tc.threads.push_back([st] {  // writer: slots alternate 0,1,0,1
      for (int s = 1; s <= kFrames; ++s) st->store.write(make_frame(s));
      st->done.store(1, sync::release);
    });
    tc.threads.push_back([st] {  // reader: concurrent failover probe
      int last = 0;
      while (st->done.load(sync::acquire) == 0) {
        auto f = st->store.latest_valid();
        if (f) {
          if (!f->valid()) {
            st->error = "reader got a frame with a bad CRC";
            return;
          }
          if (f->values != std::vector<std::uint8_t>(
                               8, static_cast<std::uint8_t>(f->superstep))) {
            st->error = "reader saw a torn frame payload at superstep " +
                        std::to_string(f->superstep);
            return;
          }
          if (f->superstep < last) {
            st->error = "latest_valid went backwards: " +
                        std::to_string(f->superstep) + " after " +
                        std::to_string(last);
            return;
          }
          last = f->superstep;
        }
        sync::thread_yield();
      }
    });
    tc.finally = [st]() -> std::string {
      if (!st->error.empty()) return st->error;
      auto f = st->store.latest_valid();
      if (!f) return "no valid frame after the writer finished";
      if (f->superstep != kFrames)
        return "latest frame is superstep " + std::to_string(f->superstep) +
               ", want " + std::to_string(kFrames);
      return "";
    };
    return tc;
  });
  PG_MODEL_EXPECT_CLEAN(stats);
  EXPECT_GE(stats.distinct_schedules, kDistinctTarget)
      << "after " << stats.executions << " executions";
}

// ---- RemoteBuffer phase contract ------------------------------------------

TEST(ModelRemoteBuffer, DepositBarrierDrainIsRaceFree) {
  const model::Options opt = smoke_options();
  const model::ExploreStats stats = model::explore(opt, [] {
    struct State {
      comm::RemoteBuffer<int> buf{8, /*shards=*/1, /*num_ranks=*/1};
      sync::Atomic<int> arrivals{0};
      std::vector<int> drained = std::vector<int>(8, -1);
    };
    auto st = std::make_shared<State>();
    auto plus = [](int a, int b) { return a + b; };
    model::TestCase tc;
    tc.threads.push_back([st, plus] {
      for (vid_t v : {0u, 1u, 2u}) st->buf.deposit(v, 0, 1, plus);
      // HB edge for the phase barrier: the release publishes the deposits,
      // the drainer's acquire spin below pairs with it.
      st->arrivals.fetch_add(1, sync::release);
    });
    tc.threads.push_back([st, plus] {
      for (vid_t v : {1u, 2u, 3u}) st->buf.deposit(v, 0, 10, plus);
      st->arrivals.fetch_add(1, sync::release);
    });
    tc.threads.push_back([st] {
      while (st->arrivals.load(sync::acquire) < 2) sync::thread_yield();
      st->buf.drain([&](vid_t dst, int value) {
        st->drained[static_cast<std::size_t>(dst)] = value;
      });
    });
    tc.finally = [st]() -> std::string {
      const std::vector<int> want = {1, 11, 11, 10, -1, -1, -1, -1};
      if (st->drained != want) return "combined drain produced wrong values";
      if (st->buf.touched_count() != 0) return "drain left entries behind";
      return "";
    };
    return tc;
  });
  PG_MODEL_EXPECT_CLEAN(stats);
  EXPECT_GE(stats.distinct_schedules, 500u);
}

// ---- SpinLock critical sections -------------------------------------------

TEST(ModelSpinlock, CriticalSectionsAreOrdered) {
  const model::Options opt = smoke_options();
  const model::ExploreStats stats = model::explore(opt, [] {
    struct State {
      sched::SpinLock lock;
      int counter = 0;  // plain shared state guarded by `lock`
    };
    auto st = std::make_shared<State>();
    auto body = [st] {
      for (int i = 0; i < 3; ++i) {
        sched::LockGuard<sched::SpinLock> g(st->lock);
        sync::plain_read(&st->counter, "spinlock-guarded counter");
        const int c = st->counter;
        sync::plain_write(&st->counter, "spinlock-guarded counter");
        st->counter = c + 1;
      }
    };
    model::TestCase tc;
    tc.threads.push_back(body);
    tc.threads.push_back(body);
    tc.finally = [st]() -> std::string {
      return st->counter == 6 ? ""
                              : "lost update: counter is " +
                                    std::to_string(st->counter) + ", want 6";
    };
    return tc;
  });
  PG_MODEL_EXPECT_CLEAN(stats);
  EXPECT_GE(stats.distinct_schedules, 500u);
}

// ---- replayability ---------------------------------------------------------

TEST(ModelScheduler, SameSeedSameSchedule) {
  // Drive the scheduler directly: identical seeds must produce identical
  // schedule hashes, distinct seeds almost surely distinct ones.
  auto run_hash = [](std::uint64_t seed) {
    struct State {
      pipeline::SpscQueue<int> q{4};
    };
    auto st = std::make_shared<State>();
    std::vector<std::function<void()>> bodies;
    bodies.push_back([st] {
      for (int i = 0; i < 3; ++i)
        while (!st->q.try_push(i)) sync::thread_yield();
    });
    bodies.push_back([st] {
      int out;
      for (int i = 0; i < 3; ++i)
        while (!st->q.try_pop(out)) sync::thread_yield();
    });
    auto r = model::Scheduler::instance().run(bodies, seed, 4, 200000);
    EXPECT_TRUE(r.failure.empty()) << r.failure;
    return r.schedule_hash;
  };
  EXPECT_EQ(run_hash(42), run_hash(42));
  EXPECT_NE(run_hash(42), run_hash(43));
}

}  // namespace

#else  // !PG_MODEL_ENABLED

TEST(Model, RequiresModelPreset) {
  GTEST_SKIP() << "model-checker tests run under the `model` preset "
                  "(PHIGRAPH_MODEL=ON); this build has it off";
}

#endif  // PG_MODEL_ENABLED
