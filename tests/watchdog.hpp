// Test watchdog: aborts the process if a scope takes longer than its limit.
//
// The fault-tolerance tests assert "no deadlock" as much as they assert
// values: a regression that leaves a rank blocked on a dead exchange or a
// mover spinning on a queue would otherwise hang the whole suite (and CI)
// instead of failing. The watchdog turns a hang into a loud abort.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace phigraph::testing {

class Watchdog {
 public:
  explicit Watchdog(std::chrono::seconds limit)
      : thread_([this, limit] {
          std::unique_lock<std::mutex> l(mu_);
          if (!cv_.wait_for(l, limit, [this] { return disarmed_; })) {
            std::fprintf(stderr,
                         "watchdog: test exceeded its %llds limit — "
                         "deadlocked fault path?\n",
                         static_cast<long long>(limit.count()));
            std::fflush(stderr);
            std::abort();
          }
        }) {}

  ~Watchdog() {
    {
      std::lock_guard<std::mutex> l(mu_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

}  // namespace phigraph::testing
