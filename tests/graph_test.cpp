// CSR graph structure tests: construction, transforms, degree accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/common/rng.hpp"
#include "src/gen/generators.hpp"
#include "src/graph/csr.hpp"
#include "src/graph/paper_example.hpp"

namespace {

using namespace phigraph;
using graph::Csr;

TEST(Csr, PaperExampleShape) {
  const auto g = graph::paper_example_graph();
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 28u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_EQ(g.out_degree(9), 4u);
  const auto nbrs = g.out_neighbors(9);  // edges[15..19) of Fig. 1
  EXPECT_EQ(std::vector<vid_t>(nbrs.begin(), nbrs.end()),
            (std::vector<vid_t>{4, 5, 6, 8}));
}

TEST(Csr, FromEdgesGroupsBySourcePreservingOrder) {
  const std::vector<std::pair<vid_t, vid_t>> edges = {
      {2, 0}, {0, 1}, {2, 1}, {0, 2}, {1, 0}};
  const auto g = Csr::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 5u);
  // Counting sort is stable: per-source edge order follows the input.
  auto n0 = g.out_neighbors(0);
  EXPECT_EQ(std::vector<vid_t>(n0.begin(), n0.end()),
            (std::vector<vid_t>{1, 2}));
  auto n2 = g.out_neighbors(2);
  EXPECT_EQ(std::vector<vid_t>(n2.begin(), n2.end()),
            (std::vector<vid_t>{0, 1}));
}

TEST(Csr, FromEdgesDedup) {
  const std::vector<std::pair<vid_t, vid_t>> edges = {
      {0, 1}, {0, 1}, {0, 2}, {1, 0}, {1, 0}, {1, 0}};
  const auto g = Csr::from_edges(3, edges, /*dedup=*/true);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 1u);
}

TEST(Csr, InDegreesMatchManualCount) {
  Rng rng(5);
  const auto g = gen::erdos_renyi(200, 1000, 8);
  const auto in = g.in_degrees();
  std::vector<vid_t> manual(200, 0);
  for (vid_t u = 0; u < 200; ++u)
    for (vid_t v : g.out_neighbors(u)) ++manual[v];
  EXPECT_EQ(in, manual);
  EXPECT_EQ(std::accumulate(in.begin(), in.end(), eid_t{0}), g.num_edges());
}

TEST(Csr, ReversedIsAnInvolution) {
  auto g = gen::pokec_like(500, 4000, 11);
  gen::add_random_weights(g, 3);
  const auto rr = g.reversed().reversed();
  EXPECT_EQ(g.num_vertices(), rr.num_vertices());
  EXPECT_EQ(g.num_edges(), rr.num_edges());
  // Same multiset of (src, dst, weight) triples per vertex.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto a = g.out_neighbors(u);
    auto b = rr.out_neighbors(u);
    std::vector<vid_t> va(a.begin(), a.end()), vb(b.begin(), b.end());
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    EXPECT_EQ(va, vb) << "vertex " << u;
  }
}

TEST(Csr, ReversedSwapsDegrees) {
  const auto g = gen::pokec_like(300, 2000, 13);
  const auto r = g.reversed();
  const auto in = g.in_degrees();
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(r.out_degree(v), in[v]);
}

TEST(Csr, ReversedCarriesEdgeValues) {
  auto g = graph::paper_example_graph();
  std::vector<float> w(g.num_edges());
  std::iota(w.begin(), w.end(), 0.0f);
  g.set_edge_values(std::move(w));
  const auto r = g.reversed();
  // Edge 0 of vertex 0 goes to 4 with value 0; find it among 4's in-edges.
  bool found = false;
  const auto nbrs = r.out_neighbors(4);
  const auto vals = r.out_edge_values(4);
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    if (nbrs[i] == 0 && vals[i] == 0.0f) found = true;
  EXPECT_TRUE(found);
}

TEST(Csr, DegreeStats) {
  const auto g = graph::paper_example_graph();
  const auto s = graph::degree_stats(g);
  EXPECT_EQ(s.min_out, 0u);
  EXPECT_EQ(s.max_out, 4u);
  EXPECT_DOUBLE_EQ(s.mean_out, 28.0 / 16.0);
  EXPECT_EQ(s.zero_out, 1u);  // vertex 3
  EXPECT_EQ(s.zero_in, 3u);   // vertices 1, 14, 15
}

TEST(Csr, EmptyGraph) {
  const auto g = Csr::from_edges(4, {});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_TRUE(g.in_degrees() == std::vector<vid_t>(4, 0));
}

TEST(Csr, ExternalTargetSpace) {
  // A device-local partition stores global targets beyond its local count.
  Csr local({0, 2}, {7, 9}, {}, /*target_space=*/10);
  EXPECT_EQ(local.num_vertices(), 1u);
  EXPECT_EQ(local.out_neighbors(0)[1], 9u);
}

}  // namespace
