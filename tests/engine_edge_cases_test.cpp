// Engine edge cases and configuration sweeps beyond the happy path.
#include <gtest/gtest.h>

#include "src/apps/bfs.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/reference.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/toposort.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"

namespace {

using namespace phigraph;
using core::EngineConfig;
using core::ExecMode;

EngineConfig small_cfg(ExecMode mode = ExecMode::kLocking) {
  EngineConfig cfg;
  cfg.mode = mode;
  cfg.threads = 3;
  cfg.movers = 2;
  cfg.sched_chunk = 8;
  return cfg;
}

TEST(EngineEdge, EmptyGraph) {
  const auto g = graph::Csr::from_edges(0, {});
  auto res = core::run_single(g, apps::PageRank{}, small_cfg());
  EXPECT_TRUE(res.values.empty());
}

TEST(EngineEdge, SingleVertexNoEdges) {
  const auto g = graph::Csr::from_edges(1, {});
  auto res = core::run_single(g, apps::Bfs{0}, small_cfg());
  EXPECT_EQ(res.values[0], 0);
  EXPECT_LE(res.run.supersteps, 2);
}

TEST(EngineEdge, SelfLoopTerminates) {
  // A self-loop relaxation must not reactivate forever (msg >= own value).
  std::vector<std::pair<vid_t, vid_t>> edges = {{0, 0}, {0, 1}};
  auto g = graph::Csr::from_edges(2, edges);
  g.set_edge_values({1.0f, 2.0f});
  auto res = core::run_single(g, apps::Sssp{0}, small_cfg());
  EXPECT_FLOAT_EQ(res.values[0], 0.0f);
  EXPECT_FLOAT_EQ(res.values[1], 2.0f);
  EXPECT_LT(res.run.supersteps, 10);
}

TEST(EngineEdge, DisconnectedComponentsStayUntouched) {
  // Two components; BFS from component A must leave B at -1.
  std::vector<std::pair<vid_t, vid_t>> edges = {{0, 1}, {1, 2}, {3, 4}};
  const auto g = graph::Csr::from_edges(5, edges);
  auto res = core::run_single(g, apps::Bfs{0}, small_cfg());
  EXPECT_EQ(res.values[2], 2);
  EXPECT_EQ(res.values[3], -1);
  EXPECT_EQ(res.values[4], -1);
}

TEST(EngineEdge, MaxSuperstepsCapIsHonored) {
  const auto g = gen::pokec_like(1000, 10000, 4);
  auto cfg = small_cfg();
  cfg.max_supersteps = 3;
  auto res = core::run_single(g, apps::PageRank{}, cfg);
  EXPECT_EQ(res.run.supersteps, 3);
  EXPECT_EQ(res.run.trace.size(), 3u);
}

TEST(EngineEdge, SingleThreadSingleMover) {
  auto g = gen::pokec_like(800, 8000, 6);
  gen::add_random_weights(g, 1);
  EngineConfig cfg;
  cfg.mode = ExecMode::kPipelining;
  cfg.threads = 1;
  cfg.movers = 1;
  const apps::Sssp prog(0);
  const auto res = core::run_single(g, prog, cfg);
  EXPECT_EQ(res.values, apps::reference_run(g, prog));
}

TEST(EngineEdge, OneToOneColumnModeMatchesDynamic) {
  auto g = gen::pokec_like(2000, 20000, 8);
  gen::add_random_weights(g, 2);
  auto dyn_cfg = small_cfg();
  dyn_cfg.column_mode = buffer::ColumnMode::kDynamic;
  auto o2o_cfg = small_cfg();
  o2o_cfg.column_mode = buffer::ColumnMode::kOneToOne;
  const apps::Sssp prog(0);
  const auto a = core::run_single(g, prog, dyn_cfg);
  const auto b = core::run_single(g, prog, o2o_cfg);
  EXPECT_EQ(a.values, b.values);
  // One-to-one pads far more lanes (Fig. 3(a) vs 3(b)).
  EXPECT_GT(metrics::totals(b.run.trace).padded_cells,
            metrics::totals(a.run.trace).padded_cells);
}

TEST(EngineEdge, CsbKSweepKeepsResults) {
  auto g = gen::pokec_like(1500, 15000, 9);
  gen::add_random_weights(g, 3);
  const apps::Sssp prog(0);
  const auto ref = apps::reference_run(g, prog);
  for (int k : {1, 2, 4, 8}) {
    auto cfg = small_cfg();
    cfg.csb_k = k;
    const auto res = core::run_single(g, prog, cfg);
    EXPECT_EQ(res.values, ref) << "k = " << k;
  }
}

TEST(EngineEdge, ChunkSizeSweepKeepsResults) {
  const auto g = gen::dag_like(800, 30000, 10, 12);
  const auto ref = apps::reference_run(g, apps::TopoSort{});
  for (std::size_t chunk : {1, 7, 64, 4096}) {
    auto cfg = small_cfg(ExecMode::kPipelining);
    cfg.sched_chunk = chunk;
    const auto res = core::run_single(g, apps::TopoSort{}, cfg);
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(res.values[v].order, ref[v].order) << "chunk " << chunk;
  }
}

TEST(EngineEdge, TinyQueueCapacityStillLossless) {
  const auto g = gen::pokec_like(1000, 20000, 11);
  auto cfg = small_cfg(ExecMode::kPipelining);
  cfg.queue_capacity = 4;  // maximal backpressure
  auto res = core::run_single(g, apps::Bfs{0}, cfg);
  const auto classic = apps::classic_bfs(g, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(res.values[v], classic[v]);
  EXPECT_GT(metrics::totals(res.run.trace).queue_full_spins, 0u);
}

TEST(EngineEdge, ManyMoversFewWorkers) {
  const auto g = gen::pokec_like(1000, 10000, 12);
  auto cfg = small_cfg(ExecMode::kPipelining);
  cfg.threads = 1;
  cfg.movers = 5;
  auto res = core::run_single(g, apps::Bfs{0}, cfg);
  const auto classic = apps::classic_bfs(g, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(res.values[v], classic[v]);
}

TEST(EngineEdge, HeteroWithAllVerticesOnOneDevice) {
  const auto g = gen::pokec_like(500, 5000, 13);
  std::vector<Device> owner(g.num_vertices(), Device::Cpu);
  core::HeteroEngine<apps::Bfs> he(g, owner, apps::Bfs{0},
                                   small_cfg(), small_cfg());
  auto res = he.run();
  const auto classic = apps::classic_bfs(g, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(res.global_values[v], classic[v]);
}

}  // namespace
