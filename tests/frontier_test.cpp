// Sparse-frontier execution tests: the active-list (sparse) and bitmap
// (dense) generation paths must be result-identical for every scheme, and
// the new frontier / dirty-group counters must obey their invariants.
#include <gtest/gtest.h>

#include "src/apps/bfs.hpp"
#include "src/apps/connected_components.hpp"
#include "src/apps/reference.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/toposort.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/partition/partition.hpp"
#include "src/simd/bitset.hpp"

namespace {

using namespace phigraph;
using core::EngineConfig;
using core::ExecMode;

constexpr double kAlwaysDense = 0.0;   // frontier_size < 0 never holds
constexpr double kAlwaysSparse = 1.0;  // frontier_size < n (near-)always holds

EngineConfig cfg(ExecMode mode, double frontier_switch, int simd_bytes = 64) {
  EngineConfig c;
  c.mode = mode;
  c.simd_bytes = simd_bytes;
  c.threads = 3;
  c.movers = 2;
  c.sched_chunk = 16;
  c.sparse_iteration_threshold = frontier_switch;
  return c;
}

/// Same, but with the traversal direction pinned to push — for the tests
/// that assert on dense/sparse PUSH iteration counters, which a pull
/// superstep would be excluded from.
EngineConfig push_cfg(ExecMode mode, double frontier_switch,
                      int simd_bytes = 64) {
  EngineConfig c = cfg(mode, frontier_switch, simd_bytes);
  c.direction_mode = core::DirectionMode::kForcePush;
  return c;
}

graph::Csr weighted_graph() {
  auto g = gen::pokec_like(3000, 30000, 21);
  gen::add_random_weights(g, 4);
  return g;
}

struct FrontierModes
    : public ::testing::TestWithParam<std::pair<ExecMode, int>> {};

TEST_P(FrontierModes, BfsIdenticalAcrossDenseSparseAndAuto) {
  const auto [mode, simd_bytes] = GetParam();
  const auto g = weighted_graph();
  const apps::Bfs prog(0);
  // Direction pinned to push: the iteration SHAPE (list vs bitmap) is the
  // knob under test, and the forced-path counter checks below require every
  // superstep to be a push superstep.
  const auto dense =
      core::run_single(g, prog, push_cfg(mode, kAlwaysDense, simd_bytes));
  const auto sparse =
      core::run_single(g, prog, push_cfg(mode, kAlwaysSparse, simd_bytes));
  EngineConfig auto_cfg = cfg(mode, 0.05, simd_bytes);
  const auto autosw = core::run_single(g, prog, auto_cfg);

  EXPECT_EQ(dense.values, sparse.values);
  EXPECT_EQ(dense.values, autosw.values);
  const auto ref = apps::reference_run(g, prog);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(dense.values[v], ref[v]) << "vertex " << v;

  // The forced paths really took the paths they were forced onto.
  const auto td = metrics::totals(dense.run.trace);
  const auto ts = metrics::totals(sparse.run.trace);
  EXPECT_EQ(td.sparse_supersteps, 0u);
  EXPECT_EQ(td.dense_supersteps, dense.run.trace.size());
  EXPECT_EQ(ts.dense_supersteps, 0u);
  EXPECT_EQ(ts.sparse_supersteps, sparse.run.trace.size());
  // Structural counters are path-independent.
  EXPECT_EQ(td.msgs_local, ts.msgs_local);
  EXPECT_EQ(td.verts_updated, ts.verts_updated);
  EXPECT_EQ(td.frontier_size, ts.frontier_size);
}

TEST_P(FrontierModes, SsspIdenticalAcrossDenseSparseAndAuto) {
  const auto [mode, simd_bytes] = GetParam();
  const auto g = weighted_graph();
  const apps::Sssp prog(0);
  const auto dense =
      core::run_single(g, prog, push_cfg(mode, kAlwaysDense, simd_bytes));
  const auto sparse =
      core::run_single(g, prog, push_cfg(mode, kAlwaysSparse, simd_bytes));
  const auto autosw = core::run_single(g, prog, cfg(mode, 0.05, simd_bytes));

  EXPECT_EQ(dense.values, sparse.values);
  EXPECT_EQ(dense.values, autosw.values);
  const auto ref = apps::reference_run(g, prog);
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(dense.values[v], ref[v]) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, FrontierModes,
    ::testing::Values(std::pair{ExecMode::kOmpStyle, 16},
                      std::pair{ExecMode::kLocking, 16},
                      std::pair{ExecMode::kLocking, 64},
                      std::pair{ExecMode::kPipelining, 64}),
    [](const ::testing::TestParamInfo<std::pair<ExecMode, int>>& info) {
      std::string s = core::exec_mode_name(info.param.first);
      s += info.param.second == 64 ? "_MIC" : "_CPU";
      return s;
    });

TEST(Frontier, CountersTrackActiveSetExactly) {
  const auto g = weighted_graph();
  const apps::Sssp prog(0);
  const auto res = core::run_single(g, prog, cfg(ExecMode::kLocking, 0.05));
  ASSERT_FALSE(res.run.trace.empty());
  for (const auto& c : res.run.trace) {
    // The compact list mirrors the bitmap: its size is the number of
    // vertices that drove generation (push: ran generate_messages; pull:
    // were scanned against as the frontier bitmap).
    EXPECT_EQ(c.frontier_size, c.active_vertices);
    // Every superstep is exactly one of push/pull, and dense/sparse
    // classify only the push iteration shapes.
    EXPECT_EQ(c.push_supersteps + c.pull_supersteps, 1u);
    EXPECT_EQ(c.dense_supersteps + c.sparse_supersteps + c.pull_supersteps,
              1u);
  }
  // Superstep 0: a single-source frontier is far below 5% density.
  EXPECT_EQ(res.run.trace[0].frontier_size, 1u);
  EXPECT_EQ(res.run.trace[0].sparse_supersteps, 1u);
}

TEST(Frontier, DirtyGroupTrackingSkipsUntouchedGroups) {
  const auto g = weighted_graph();
  const apps::Sssp prog(0);
  const auto res = core::run_single(g, prog, cfg(ExecMode::kLocking, 0.05));
  const std::size_t num_groups =
      res.run.trace[0].groups_dirty + res.run.trace[0].groups_skipped;
  ASSERT_GT(num_groups, 0u);
  std::uint64_t best_skip_ratio = 0;
  for (const auto& c : res.run.trace) {
    // dirty + skipped always partitions the group set.
    EXPECT_EQ(c.groups_dirty + c.groups_skipped, num_groups);
    // A group only gets dirty if some message landed in it.
    if (c.msgs_local == 0) EXPECT_EQ(c.groups_dirty, 0u);
    if (c.groups_dirty > 0)
      best_skip_ratio =
          std::max(best_skip_ratio, c.groups_skipped / c.groups_dirty);
  }
  // Low-frontier supersteps skip the overwhelming majority of groups — the
  // >=10x CSB task-count reduction the sparse path exists for.
  EXPECT_GE(best_skip_ratio, 10u);
}

TEST(Frontier, ConnectedComponentsIdenticalDenseAndSparse) {
  // CC starts all-active (every vertex is a frontier member in superstep 0)
  // and shrinks — exercises the density switch in both directions.
  auto g = gen::dblp_like(2000, 6000, 17);
  const apps::ConnectedComponents prog;
  const auto dense =
      core::run_single(g, prog, cfg(ExecMode::kLocking, kAlwaysDense));
  const auto sparse =
      core::run_single(g, prog, cfg(ExecMode::kLocking, kAlwaysSparse));
  const auto autosw = core::run_single(g, prog, cfg(ExecMode::kLocking, 0.05));
  EXPECT_EQ(dense.values, sparse.values);
  EXPECT_EQ(dense.values, autosw.values);
}

TEST(Frontier, BitmapActiveListRoundTripAtDirectionBoundary) {
  // Direction boundary plumbing: a push superstep produces the next frontier
  // as per-thread compact lists merged into frontier_ plus the active_ byte
  // map; a pull superstep consumes the byte map via a word-packed bitmap and
  // produces the next frontier through the same activate() path. Crossing
  // push -> pull -> push must therefore preserve the frontier exactly, which
  // this asserts end-to-end: an auto run that demonstrably switched both
  // ways computes the same values as a never-switching push run.
  const auto g = weighted_graph();
  const apps::Bfs prog(0);
  const auto pushed =
      core::run_single(g, prog, push_cfg(ExecMode::kLocking, 0.05));
  const auto autosw = core::run_single(g, prog, cfg(ExecMode::kLocking, 0.05));
  EXPECT_EQ(pushed.values, autosw.values);

  const auto ta = metrics::totals(autosw.run.trace);
  const auto tp = metrics::totals(pushed.run.trace);
  // The auto run really crossed the boundary (power-law BFS: the dense
  // middle pulls, the sparse tail pushes again) and the forced run never did.
  EXPECT_GE(ta.pull_supersteps, 1u);
  EXPECT_GE(ta.direction_flips, 2u);
  EXPECT_EQ(tp.pull_supersteps, 0u);
  EXPECT_EQ(tp.push_supersteps, pushed.run.trace.size());
  EXPECT_EQ(tp.direction_flips, 0u);
  // Pull work is accounted on its own counters, never on the push ones.
  EXPECT_EQ(tp.pull_edges_scanned, 0u);
  EXPECT_GT(ta.pull_edges_scanned, 0u);
  for (const auto& c : autosw.run.trace)
    if (c.pull_supersteps) {
      EXPECT_EQ(c.edges_scanned, 0u);
      EXPECT_EQ(c.msgs_local, 0u);
      EXPECT_EQ(c.active_vertices, c.frontier_size);
    }
}

TEST(Frontier, DenseBitsetRoundTripsByteMaps) {
  // The pull kernel's word-packed bitmap is rebuilt from the engine's
  // byte-per-vertex active map every pull superstep (AVX2 fast path when
  // available) — bytes -> bits -> bytes must be the identity for sizes that
  // exercise the 32-byte vector blocks, the word boundaries and the scalar
  // tail.
  for (std::size_t n : {1u, 31u, 32u, 33u, 64u, 100u, 257u, 4096u, 5000u}) {
    std::vector<std::uint8_t> bytes(n, 0);
    // Deterministic mixed pattern, including values > 1 and >= 0x80 (any
    // nonzero byte counts as active).
    for (std::size_t i = 0; i < n; ++i)
      bytes[i] = (i % 3 == 0) ? static_cast<std::uint8_t>(1 + (i * 37) % 255)
                              : 0;
    simd::DenseBitset bits(n);
    bits.assign_bytes(bytes.data(), n);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bits.test(i), bytes[i] != 0) << "n=" << n << " i=" << i;
      if (bytes[i]) ++expected;
    }
    EXPECT_EQ(bits.count(), expected);
    std::vector<std::uint8_t> back(n, 0xee);
    bits.to_bytes(back.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(back[i], bytes[i] ? 1 : 0) << "n=" << n << " i=" << i;
    // Re-assigning an inverted pattern fully overwrites stale bits.
    for (std::size_t i = 0; i < n; ++i) bytes[i] = bytes[i] ? 0 : 0x80;
    bits.assign_bytes(bytes.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(bits.test(i), bytes[i] != 0) << "inverted n=" << n << " i=" << i;
  }
}

TEST(Frontier, ToposortIdenticalDenseAndSparse) {
  const auto g = gen::dag_like(1500, 15000, 23);
  const apps::TopoSort prog;
  const auto dense =
      core::run_single(g, prog, cfg(ExecMode::kPipelining, kAlwaysDense));
  const auto sparse =
      core::run_single(g, prog, cfg(ExecMode::kPipelining, kAlwaysSparse));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(dense.values[v].order, sparse.values[v].order);
    EXPECT_EQ(dense.values[v].remaining, sparse.values[v].remaining);
  }
}

// ---------------------------------------------------------------------------
// With a peer device: frontier switching on both ranks, remote combine
// through the sharded buffer, parallel exchange drain.
// ---------------------------------------------------------------------------

std::vector<Device> round_robin_owner(vid_t n, int a, int b) {
  std::vector<Device> owner(n);
  for (vid_t v = 0; v < n; ++v)
    owner[v] = (static_cast<int>(v % static_cast<vid_t>(a + b)) < a)
                   ? Device::Cpu
                   : Device::Mic;
  return owner;
}

TEST(FrontierHetero, BfsIdenticalAcrossThresholdsWithPeer) {
  const auto g = weighted_graph();
  const apps::Bfs prog(3);
  const auto classic = apps::classic_bfs(g, 3);

  for (double thresh : {kAlwaysDense, kAlwaysSparse, 0.05}) {
    core::HeteroEngine<apps::Bfs> he(
        g, round_robin_owner(g.num_vertices(), 1, 2), prog,
        cfg(ExecMode::kLocking, thresh, 16),
        cfg(ExecMode::kPipelining, thresh, 64));
    auto res = he.run();
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(res.global_values[v], classic[v])
          << "vertex " << v << " threshold " << thresh;
  }
}

TEST(FrontierHetero, SsspShardedRemoteCombineMatchesReference) {
  const auto g = weighted_graph();
  const apps::Sssp prog(0);
  const auto ref = apps::reference_run(g, prog);

  auto cpu = cfg(ExecMode::kLocking, kAlwaysSparse, 16);
  auto mic = cfg(ExecMode::kLocking, kAlwaysSparse, 64);
  cpu.remote_shards = 4;  // force multi-entry shards
  mic.remote_shards = 4;
  core::HeteroEngine<apps::Sssp> he(
      g, round_robin_owner(g.num_vertices(), 1, 1), prog, cpu, mic);
  auto res = he.run();
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(res.global_values[v], ref[v]) << "vertex " << v;
}

}  // namespace
