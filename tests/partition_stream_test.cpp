// Streaming vertex-cut partitioner properties (DESIGN.md §14): HDRF's hard
// balance bound, DBH's degree-hash rule, replication-factor bounds,
// chunk-size independence, and zero-weight rank exclusion — the PartitionKway
// property style applied to the streaming schemes.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "src/gen/generators.hpp"
#include "src/graph/edge_stream.hpp"
#include "src/partition/partition.hpp"
#include "src/partition/stream_partition.hpp"

namespace {

using namespace phigraph;
using graph::CsrEdgeStream;
using graph::MemoryEdgeStream;
using graph::StreamEdge;
using partition::Dbh;
using partition::Hdrf;
using partition::RankWeights;
using partition::StreamOptions;
using partition::VertexCut;

std::vector<StreamEdge> edges_of(const graph::Csr& g) {
  std::vector<StreamEdge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (vid_t u = 0; u < g.num_vertices(); ++u)
    for (vid_t v : g.out_neighbors(u)) edges.push_back({u, v});
  return edges;
}

TEST(PartitionStream, HdrfNeverExceedsBalanceBound) {
  const auto power = gen::pokec_like(4000, 40000, 11);
  const auto uniform = gen::erdos_renyi(2000, 20000, 5);
  for (const auto* g : {&power, &uniform})
    for (const RankWeights& w :
         {RankWeights{1, 1}, RankWeights{1, 1, 1, 1}, RankWeights{3, 1, 1, 3}})
      for (double lambda : {0.0, 1.1, 4.0}) {
        StreamOptions opt;
        opt.lambda = lambda;
        CsrEdgeStream stream(*g);
        const VertexCut cut = Hdrf::partition(stream, w, opt);
        ASSERT_EQ(cut.load_cap.size(), w.size());
        double wsum = 0;
        for (int x : w) wsum += x;
        eid_t placed = 0;
        for (std::size_t r = 0; r < w.size(); ++r) {
          EXPECT_LE(cut.edge_load[r], cut.load_cap[r])
              << "rank " << r << " lambda " << lambda;
          // The bound itself is the declared slack over the fair share.
          EXPECT_LE(static_cast<double>(cut.load_cap[r]),
                    opt.balance_slack * (w[r] / wsum) *
                            static_cast<double>(g->num_edges()) +
                        1.0);
          placed += cut.edge_load[r];
        }
        EXPECT_EQ(placed, g->num_edges());
        EXPECT_EQ(cut.edge_rank.size(), g->num_edges());
      }
}

TEST(PartitionStream, DbhAssignsEveryEdgeToLowerDegreeEndpointHash) {
  const auto g = gen::pokec_like(3000, 24000, 23);
  const auto edges = edges_of(g);
  // Degrees computed independently of the partitioner: both endpoint
  // appearances count, exactly what the two-pass stream accumulates.
  std::vector<eid_t> degree(g.num_vertices(), 0);
  for (const StreamEdge& e : edges) {
    ++degree[e.u];
    ++degree[e.v];
  }
  for (const RankWeights& w : {RankWeights{1, 1, 1}, RankWeights{2, 1, 1, 2}}) {
    StreamOptions opt;
    opt.seed = 99;
    CsrEdgeStream stream(g);
    const VertexCut cut = Dbh::partition(stream, w, opt);
    ASSERT_EQ(cut.edge_rank.size(), edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i)
      ASSERT_EQ(cut.edge_rank[i],
                Dbh::hash_rank(edges[i], degree, w, opt.seed))
          << "edge " << i;
  }
}

TEST(PartitionStream, ReplicationFactorBounds) {
  const auto g = gen::pokec_like(2000, 16000, 7);
  for (int k : {1, 2, 3, 4, 8}) {
    const RankWeights w(static_cast<std::size_t>(k), 1);
    CsrEdgeStream s1(g), s2(g);
    for (const VertexCut& cut :
         {Hdrf::partition(s1, w), Dbh::partition(s2, w)}) {
      const double rf = cut.replication_factor();
      EXPECT_GE(rf, 1.0) << "k=" << k;
      EXPECT_LE(rf, static_cast<double>(k)) << "k=" << k;
      // Every vertex has a master hosting one of its replicas.
      for (vid_t v = 0; v < g.num_vertices(); ++v) {
        ASSERT_GE(cut.master[v], 0);
        ASSERT_LT(cut.master[v], k);
        ASSERT_TRUE((cut.replicas[v] >> cut.master[v]) & 1) << "vertex " << v;
      }
    }
  }
}

TEST(PartitionStream, DeterministicAcrossChunkSizes) {
  const auto g = gen::dblp_like(1500, 9000, 31);
  const auto edges = edges_of(g);
  const RankWeights w{2, 1, 1};
  StreamOptions opt;
  opt.seed = 5;

  // One-shot reference: a single chunk holding the whole list.
  MemoryEdgeStream whole(g.num_vertices(), edges, edges.size() + 1);
  const VertexCut hdrf_ref = Hdrf::partition(whole, w, opt);
  const VertexCut dbh_ref = Dbh::partition(whole, w, opt);

  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            std::size_t{1024}}) {
    MemoryEdgeStream chunked(g.num_vertices(), edges, chunk);
    const VertexCut h = Hdrf::partition(chunked, w, opt);
    EXPECT_EQ(h.edge_rank, hdrf_ref.edge_rank) << "chunk " << chunk;
    EXPECT_EQ(h.master, hdrf_ref.master) << "chunk " << chunk;
    EXPECT_EQ(h.replicas, hdrf_ref.replicas) << "chunk " << chunk;
    EXPECT_EQ(h.edge_load, hdrf_ref.edge_load) << "chunk " << chunk;

    const VertexCut d = Dbh::partition(chunked, w, opt);
    EXPECT_EQ(d.edge_rank, dbh_ref.edge_rank) << "chunk " << chunk;
    EXPECT_EQ(d.master, dbh_ref.master) << "chunk " << chunk;
    EXPECT_EQ(d.replicas, dbh_ref.replicas) << "chunk " << chunk;
  }

  // The CSR re-streamer delivers the same sequence, so it must agree too.
  CsrEdgeStream csr(g, 113);
  EXPECT_EQ(Hdrf::partition(csr, w, opt).edge_rank, hdrf_ref.edge_rank);
}

TEST(PartitionStream, ZeroWeightRanksReceiveNoEdges) {
  // erdos_renyi leaves some vertices isolated — their masters must also
  // avoid the zero-weight rank.
  const auto g = gen::erdos_renyi(800, 3000, 21);
  const RankWeights w{1, 0, 2};
  CsrEdgeStream s1(g), s2(g);
  for (const VertexCut& cut : {Hdrf::partition(s1, w), Dbh::partition(s2, w)}) {
    EXPECT_EQ(cut.edge_load[1], 0u);
    for (int r : cut.edge_rank) EXPECT_NE(r, 1);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      EXPECT_NE(cut.master[v], 1) << "vertex " << v;
      EXPECT_FALSE((cut.replicas[v] >> 1) & 1) << "vertex " << v;
    }
  }
}

// The acceptance property behind fig6: on a power-law graph at k = 4, HDRF
// replicates strictly less than round-robin and its master map cuts fewer
// cross-rank edges.
TEST(PartitionStream, HdrfBeatsRoundRobinOnPowerLawAtFourRanks) {
  const auto g = gen::pokec_like(20000, 250000, 1);
  const RankWeights w{1, 1, 1, 1};

  CsrEdgeStream stream(g);
  const VertexCut cut = Hdrf::partition(stream, w);
  const auto hdrf_stats = partition::evaluate_partition_k(g, cut.master, 4);
  const auto rr_stats = partition::evaluate_partition_k(
      g, partition::round_robin_partition_k(g, w), 4);

  EXPECT_LT(cut.replication_factor(), rr_stats.replication_factor);
  EXPECT_LT(hdrf_stats.cross_edges, rr_stats.cross_edges);
  // And the streaming balance bound held while doing it.
  // (+1e-4 absorbs the cap's ceil rounding relative to m = 250k edges.)
  EXPECT_LE(cut.load_imbalance(), StreamOptions{}.balance_slack + 1e-4);
}

// KwayStats' new metrics on a hand-checkable graph: a 4-cycle dealt to two
// ranks alternately places every edge on the other rank's vertex, so every
// vertex is present on both ranks (RF = 2) and each rank carries half the
// edges (imbalance = 1).
TEST(PartitionStream, KwayStatsMetricsOnTinyGraph) {
  const std::vector<std::pair<vid_t, vid_t>> ring{{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const auto g = graph::Csr::from_edges(4, ring);
  const std::vector<int> owner{0, 1, 0, 1};
  const auto s = partition::evaluate_partition_k(g, owner, 2);
  EXPECT_DOUBLE_EQ(s.replication_factor, 2.0);
  EXPECT_DOUBLE_EQ(s.load_imbalance, 1.0);
  EXPECT_EQ(s.cross_edges, 4u);
}

// The scheme dispatcher is what EngineConfig-driven construction calls:
// every scheme yields a complete, in-range owner map, and the static trio
// matches its direct form.
TEST(PartitionStream, MakePartitionKCoversEveryScheme) {
  const auto g = gen::pokec_like(2000, 16000, 3);
  const RankWeights w{1, 1, 1};
  using partition::Scheme;
  EXPECT_EQ(partition::make_partition_k(Scheme::kRoundRobin, g, w),
            partition::round_robin_partition_k(g, w));
  EXPECT_EQ(partition::make_partition_k(Scheme::kContinuous, g, w),
            partition::continuous_partition_k(g, w));
  for (Scheme s : {Scheme::kContinuous, Scheme::kRoundRobin, Scheme::kHybrid,
                   Scheme::kHdrf, Scheme::kDbh}) {
    const auto owner = partition::make_partition_k(s, g, w);
    ASSERT_EQ(owner.size(), g.num_vertices());
    for (int r : owner) {
      ASSERT_GE(r, 0);
      ASSERT_LT(r, 3);
    }
  }
}

}  // namespace
