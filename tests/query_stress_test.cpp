// Serving-layer concurrency stress: many submitter threads against the
// QueryEngine's bounded admission queue, run under the tsan preset like the
// other stress batteries.
//
// Properties enforced (the ISSUE's serving contract):
//   * no lost results — every ticket a successful submit() returns is
//     eventually fulfilled, shutdown included;
//   * no duplicated results — QueryTicket::fulfill PG_CHECKs single
//     fulfillment, so a double-serve aborts the test;
//   * no cross-job mixups — each fulfilled result carries its own job's
//     kind/source and the right answer for that source;
//   * backpressure blocks rather than drops — with capacity C the observed
//     queue depth never exceeds C and the fulfilled-job count still equals
//     the submitted-job count;
//   * clean shutdown with jobs in flight — shutdown() drains every queued
//     job before the dispatcher exits, and submit() after shutdown returns
//     nullptr instead of wedging or crashing.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/apps/multi_source.hpp"
#include "src/apps/reference.hpp"
#include "src/common/rng.hpp"
#include "src/core/query_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/graph/csr.hpp"
#include "watchdog.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define PG_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define PG_TEST_SANITIZED 1
#endif
#endif
#ifndef PG_TEST_SANITIZED
#define PG_TEST_SANITIZED 0
#endif

namespace {

using namespace phigraph;
using core::EngineConfig;
using core::QueryKind;

graph::Csr make_graph(std::uint64_t seed) {
  auto g = gen::pokec_like(120, 480, seed);
  gen::add_random_weights(g, seed ^ 0x94d049bbull);
  return g;
}

EngineConfig serving_cfg(std::size_t capacity, int batch_max, int wait_ms) {
  EngineConfig e;
  e.threads = 2;
  e.movers = 1;
  e.simd_bytes = simd::kCpuSimdBytes;
  e.serve_queue_capacity = capacity;
  e.serve_batch_max = batch_max;
  e.serve_batch_wait_ms = wait_ms;
  return e;
}

/// BFS references for every vertex a stress thread might query, computed
/// once up front so result checks are just comparisons.
std::map<vid_t, std::vector<std::int32_t>> bfs_refs(const graph::Csr& g,
                                                    const std::vector<vid_t>& srcs) {
  std::map<vid_t, std::vector<std::int32_t>> refs;
  for (vid_t s : srcs)
    if (refs.find(s) == refs.end()) refs.emplace(s, apps::classic_bfs(g, s));
  return refs;
}

TEST(QueryStress, ConcurrentSubmittersNoLostNoMixedResults) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 900 : 300));
  const auto g = make_graph(0x57e5);
  constexpr int kThreads = 4;
  constexpr int kJobsEach = PG_TEST_SANITIZED ? 12 : 32;

  // Per-thread deterministic source sequences, references precomputed.
  std::vector<std::vector<vid_t>> plan(kThreads);
  std::vector<vid_t> all;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(0x57e5u + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kJobsEach; ++i) {
      plan[static_cast<std::size_t>(t)].push_back(
          static_cast<vid_t>(rng.below(g.num_vertices())));
      all.push_back(plan[static_cast<std::size_t>(t)].back());
    }
  }
  const auto refs = bfs_refs(g, all);

  core::QueryEngine qe(g, serving_cfg(/*capacity=*/4, /*batch_max=*/8,
                                      /*wait_ms=*/1));
  std::vector<std::vector<std::shared_ptr<core::QueryTicket>>> tickets(
      kThreads);
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t)
      submitters.emplace_back([&, t] {
        for (vid_t src : plan[static_cast<std::size_t>(t)])
          tickets[static_cast<std::size_t>(t)].push_back(
              qe.submit({QueryKind::kBfs, src}));
      });
    for (auto& th : submitters) th.join();
  }

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(tickets[static_cast<std::size_t>(t)].size(),
              static_cast<std::size_t>(kJobsEach));
    for (int i = 0; i < kJobsEach; ++i) {
      auto& ticket = tickets[static_cast<std::size_t>(t)]
                            [static_cast<std::size_t>(i)];
      ASSERT_NE(ticket, nullptr) << "submit dropped a job pre-shutdown";
      const auto& r = ticket->get();
      const vid_t expect =
          plan[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
      ASSERT_EQ(r.kind, QueryKind::kBfs);
      ASSERT_EQ(r.source, expect)
          << "thread " << t << " job " << i << " got another job's result";
      ASSERT_EQ(r.level, refs.at(expect))
          << "thread " << t << " job " << i << " wrong answer";
    }
  }

  qe.shutdown();
  const auto s = qe.stats();
  EXPECT_EQ(s.jobs, static_cast<std::uint64_t>(kThreads) * kJobsEach)
      << "fulfilled-job count must equal submitted-job count";
  EXPECT_EQ(s.latency_us.count, s.jobs);
  EXPECT_LE(s.max_queue_depth, 4u)
      << "backpressure must bound the queue at its capacity";
}

TEST(QueryStress, BackpressureBoundsDepthWithoutDropping) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 900 : 300));
  const auto g = make_graph(0xb10c);
  constexpr std::size_t kCapacity = 2;
  constexpr int kThreads = 3;
  constexpr int kJobsEach = PG_TEST_SANITIZED ? 8 : 20;

  core::QueryEngine qe(g, serving_cfg(kCapacity, /*batch_max=*/2,
                                      /*wait_ms=*/1));
  std::vector<std::thread> submitters;
  sync::Atomic<std::uint64_t> fulfilled{0};
  for (int t = 0; t < kThreads; ++t)
    submitters.emplace_back([&, t] {
      Rng rng(0xb10cu + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kJobsEach; ++i) {
        const auto src = static_cast<vid_t>(rng.below(g.num_vertices()));
        auto ticket = qe.submit({QueryKind::kBfs, src});
        ASSERT_NE(ticket, nullptr);
        // Waiting on every other job keeps submitters ahead of the
        // dispatcher, so admission actually hits the capacity wall.
        if (i % 2 == 0) {
          const auto& r = ticket->get();
          ASSERT_EQ(r.source, src);
        }
        fulfilled.fetch_add(1, sync::relaxed);
      }
    });
  for (auto& th : submitters) th.join();
  qe.shutdown();

  const auto s = qe.stats();
  EXPECT_EQ(fulfilled.load(sync::relaxed),
            static_cast<std::uint64_t>(kThreads) * kJobsEach);
  EXPECT_EQ(s.jobs, static_cast<std::uint64_t>(kThreads) * kJobsEach)
      << "bounded queue must block, never drop";
  EXPECT_LE(s.max_queue_depth, kCapacity);
}

TEST(QueryStress, ShutdownDrainsJobsInFlight) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 900 : 300));
  const auto g = make_graph(0xd5a1);
  // A long batch wait guarantees jobs are still queued when shutdown lands;
  // the dispatcher must skip the wait and drain them all.
  auto cfg = serving_cfg(/*capacity=*/64, /*batch_max=*/4, /*wait_ms=*/5000);
  Rng rng(0xd5a1);
  std::vector<std::pair<vid_t, std::shared_ptr<core::QueryTicket>>> subs;
  {
    core::QueryEngine qe(g, cfg);
    for (int i = 0; i < 10; ++i) {
      const auto src = static_cast<vid_t>(rng.below(g.num_vertices()));
      subs.emplace_back(src, qe.submit({QueryKind::kBfs, src}));
      ASSERT_NE(subs.back().second, nullptr);
    }
    qe.shutdown();
    EXPECT_EQ(qe.stats().jobs, 10u) << "shutdown left queued jobs unserved";
    EXPECT_EQ(qe.submit({QueryKind::kBfs, 0}), nullptr)
        << "submit after shutdown must refuse, not wedge";
  }  // destructor after explicit shutdown: must be a no-op, not a crash
  for (const auto& [src, ticket] : subs) {
    ASSERT_TRUE(ticket->ready()) << "in-flight job lost at shutdown";
    const auto& r = ticket->get();
    EXPECT_EQ(r.source, src);
    EXPECT_EQ(r.level, apps::classic_bfs(g, src));
  }
}

TEST(QueryStress, SubmittersRacingShutdownNeverLoseAdmittedJobs) {
  phigraph::testing::Watchdog wd(
      std::chrono::seconds(PG_TEST_SANITIZED ? 900 : 300));
  const auto g = make_graph(0xfade);
  core::QueryEngine qe(g, serving_cfg(/*capacity=*/4, /*batch_max=*/4,
                                      /*wait_ms=*/1));
  constexpr int kThreads = 3;
  std::vector<std::vector<std::shared_ptr<core::QueryTicket>>> tickets(
      kThreads);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t)
    submitters.emplace_back([&, t] {
      Rng rng(0xfadeu + static_cast<std::uint64_t>(t));
      // Submit until the engine refuses: nullptr marks the shutdown edge.
      for (int i = 0; i < 1000; ++i) {
        auto ticket = qe.submit(
            {QueryKind::kBfs, static_cast<vid_t>(rng.below(g.num_vertices()))});
        if (ticket == nullptr) break;
        tickets[static_cast<std::size_t>(t)].push_back(std::move(ticket));
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  qe.shutdown();
  for (auto& th : submitters) th.join();

  std::uint64_t admitted = 0;
  for (const auto& per_thread : tickets)
    for (const auto& ticket : per_thread) {
      ++admitted;
      ASSERT_TRUE(ticket->ready())
          << "a ticket the engine handed out was never fulfilled";
    }
  EXPECT_EQ(qe.stats().jobs, admitted)
      << "every admitted job, and only those, must be served";
}

}  // namespace
