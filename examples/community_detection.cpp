// Community detection: Semi-Clustering on a DBLP-like co-authorship graph
// (the paper's §V-B SC workload). Shows the scalar CSB path (fat,
// non-reducible message type) and cluster inspection.
//
//   $ ./community_detection [num_vertices] [num_undirected_edges]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/apps/semiclustering.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"

int main(int argc, char** argv) {
  using namespace phigraph;

  const vid_t n = argc > 1 ? static_cast<vid_t>(std::atoll(argv[1])) : 5'000;
  const eid_t m = argc > 2 ? static_cast<eid_t>(std::atoll(argv[2])) : 15'000;

  std::printf("generating DBLP-like co-authorship graph: %u authors, "
              "%llu collaborations\n",
              n, static_cast<unsigned long long>(m));
  const auto g = gen::dblp_like(n, m, /*seed=*/7);

  core::EngineConfig cfg;
  cfg.mode = core::ExecMode::kPipelining;  // the paper's best MIC scheme
  cfg.simd_bytes = simd::kMicSimdBytes;    // SC still uses scalar columns
  cfg.threads = 2;
  cfg.movers = 2;
  cfg.max_supersteps = 6;

  const apps::SemiClustering program(/*f_boundary=*/0.2f);
  auto res = core::run_single(g, program, cfg);

  std::printf("ran %d supersteps; sample semi-clusters:\n",
              res.run.supersteps);
  int shown = 0;
  for (vid_t v = 0; v < n && shown < 8; ++v) {
    const auto& list = res.values[v];
    if (list.count == 0 || list.clusters[0].size < 3) continue;
    const auto& c = list.clusters[0];
    std::printf("  author %5u: cluster {", v);
    for (std::uint32_t i = 0; i < c.size; ++i)
      std::printf("%s%u", i ? ", " : "", c.members[i]);
    std::printf("} score %.3f (internal %.2f, boundary %.2f)\n",
                static_cast<double>(c.score), static_cast<double>(c.inner),
                static_cast<double>(c.boundary()));
    ++shown;
  }

  // Aggregate: how many distinct top clusters of each size emerged.
  std::map<std::uint32_t, int> size_histogram;
  for (vid_t v = 0; v < n; ++v)
    if (res.values[v].count > 0)
      ++size_histogram[res.values[v].clusters[0].size];
  std::printf("top-cluster size histogram:\n");
  for (const auto& [size, count] : size_histogram)
    std::printf("  size %u: %d authors\n", size, count);
  return 0;
}
