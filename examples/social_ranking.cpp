// Social-network influence ranking: PageRank on a Pokec-like social graph,
// executed heterogeneously across the CPU and the (simulated) MIC with
// hybrid graph partitioning — the paper's flagship workload end-to-end.
//
//   $ ./social_ranking [num_vertices] [num_edges]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/apps/pagerank.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/partition/partition.hpp"
#include "src/sim/model.hpp"

int main(int argc, char** argv) {
  using namespace phigraph;

  const vid_t n = argc > 1 ? static_cast<vid_t>(std::atoll(argv[1])) : 50'000;
  const eid_t m = argc > 2 ? static_cast<eid_t>(std::atoll(argv[2])) : 800'000;

  std::printf("generating pokec-like social graph: %u users, %llu follows\n",
              n, static_cast<unsigned long long>(m));
  const auto g = gen::pokec_like(n, m, /*seed=*/2024);

  // Partition the workload 3:5 between CPU and MIC using the hybrid scheme
  // (256 min-cut blocks dealt to devices by cumulative edge weight).
  const partition::Ratio ratio{3, 5};
  auto owner = partition::hybrid_partition(g, ratio, {.num_blocks = 256});
  const auto pstats = partition::evaluate_partition(g, owner);
  std::printf("hybrid partition 3:5 -> CPU %llu edges, MIC %llu edges, "
              "%llu cross edges (%.1f%%)\n",
              static_cast<unsigned long long>(pstats.edges[0]),
              static_cast<unsigned long long>(pstats.edges[1]),
              static_cast<unsigned long long>(pstats.cross_edges),
              100.0 * static_cast<double>(pstats.cross_edges) /
                  static_cast<double>(g.num_edges()));

  // CPU runs the locking scheme on SSE lanes; MIC runs worker/mover
  // pipelining on 512-bit lanes (the paper's best per-device schemes).
  core::EngineConfig cpu_cfg;
  cpu_cfg.mode = core::ExecMode::kLocking;
  cpu_cfg.simd_bytes = simd::kCpuSimdBytes;
  cpu_cfg.threads = 2;
  cpu_cfg.max_supersteps = 20;

  core::EngineConfig mic_cfg;
  mic_cfg.mode = core::ExecMode::kPipelining;
  mic_cfg.simd_bytes = simd::kMicSimdBytes;
  mic_cfg.threads = 2;
  mic_cfg.movers = 2;
  mic_cfg.max_supersteps = 20;

  core::HeteroEngine<apps::PageRank> engine(g, std::move(owner),
                                            apps::PageRank{}, cpu_cfg, mic_cfg);
  auto res = engine.run();

  // Top influencers.
  std::vector<vid_t> order(n);
  for (vid_t v = 0; v < n; ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](vid_t a, vid_t b) {
                      return res.global_values[a] > res.global_values[b];
                    });
  std::printf("\ntop 10 users by PageRank after %d supersteps:\n",
              res.cpu.supersteps);
  for (int i = 0; i < 10; ++i)
    std::printf("  #%2d user %6u  rank %.3f\n", i + 1, order[i],
                res.global_values[order[i]]);

  // Modeled device times for the paper's hardware.
  sim::ExecProfile cpu_prof{core::ExecMode::kLocking, 16, 0, true, 4};
  cpu_prof.num_vertices = pstats.verts[0];
  sim::ExecProfile mic_prof{core::ExecMode::kPipelining, 180, 60, true, 16};
  mic_prof.num_vertices = pstats.verts[1];
  const auto est = sim::model_hetero(res.cpu.trace, sim::xeon_e5_2680(),
                                     cpu_prof, res.mic.trace,
                                     sim::xeon_phi_se10p(), mic_prof, {});
  std::printf("\nmodeled heterogeneous run on the paper's node: "
              "%.3fs execution + %.3fs PCIe communication\n",
              est.execution_seconds, est.comm_seconds);
  return 0;
}
