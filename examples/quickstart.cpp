// Quickstart: Single-Source Shortest Paths on a small graph — the paper's
// running example (§III, Listing 1), using the public PhiGraph API.
//
//   $ ./quickstart
//
// Walks through the full workflow: build a graph, pick an engine
// configuration (execution scheme + SIMD profile), run, read results.
#include <cstdio>

#include "src/apps/sssp.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/graph/csr.hpp"

int main() {
  using namespace phigraph;

  // 1. A small weighted directed graph (edge list -> CSR).
  //        0 --1.0--> 1 --2.0--> 3
  //        0 --4.0--> 2 --1.5--> 3 --0.5--> 4
  const std::vector<std::pair<vid_t, vid_t>> edges = {
      {0, 1}, {1, 3}, {0, 2}, {2, 3}, {3, 4}};
  auto g = graph::Csr::from_edges(5, edges);
  // Edge values are stored in CSR order (edges grouped by source):
  //   0->1: 1.0   0->2: 4.0   1->3: 2.0   2->3: 1.5   3->4: 0.5
  g.set_edge_values({1.0f, 4.0f, 2.0f, 1.5f, 0.5f});

  // 2. Engine configuration: the locking scheme on the "MIC" SIMD profile
  //    (16-float lanes). Swap kLocking for kPipelining to use worker/mover
  //    message generation, or simd::kCpuSimdBytes for SSE-width lanes.
  core::EngineConfig cfg;
  cfg.mode = core::ExecMode::kLocking;
  cfg.simd_bytes = simd::kMicSimdBytes;
  cfg.threads = 2;

  // 3. The vertex program: SSSP from vertex 0 (user-defined functions
  //    generate_messages / process_messages / update_vertex live in
  //    src/apps/sssp.hpp and follow the paper's Listing 1).
  const apps::Sssp program(/*source=*/0);

  // 4. Run to convergence and read the per-vertex distances.
  auto result = core::run_single(g, program, cfg);

  std::printf("SSSP from vertex 0 (%d supersteps):\n", result.run.supersteps);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (result.values[v] == apps::Sssp::kInfinity)
      std::printf("  vertex %u: unreachable\n", v);
    else
      std::printf("  vertex %u: distance %.1f\n", v, result.values[v]);
  }

  // Expected: 0 -> 0.0, 1 -> 1.0, 2 -> 4.0, 3 -> 3.0, 4 -> 3.5
  return 0;
}
