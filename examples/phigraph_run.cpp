// phigraph_run — the "driver code" of the paper's Fig. 2 as a CLI tool:
// load (or generate) a graph, load (or compute) a partitioning file, pick an
// application and execution scheme, run, and dump per-vertex results.
//
//   phigraph_run --app=sssp --graph=web.adj --source=0 --mode=pipe
//   phigraph_run --app=pagerank --gen=pokec:100000:1800000 --hetero
//                --ratio=3:5 --partition-out=web.part --out=ranks.txt
//   printf 'bfs 0\nsssp 17\ncc 42\n' | phigraph_run --serve --gen=pokec:20000:250000
//
// Flags:
//   --app=pagerank|bfs|sssp|sc|cc|toposort   (required unless --serve)
//   --serve              serving mode: read one query per line from stdin
//                        ("bfs V", "sssp V", "cc V", "ppr V"), batch them
//                        through the QueryEngine admission queue (up to 64
//                        compatible queries share one bit-parallel run), and
//                        print each answer in submission order
//   --batch-max=K        serve: max queries fused into one batch (1-64)
//   --batch-wait-ms=W    serve: how long a batch waits for co-riders
//   --queue-cap=C        serve: admission-queue bound (submit blocks beyond)
//   --graph=FILE         adjacency-list (.adj), binary (.pgb) or edge list
//   --gen=KIND:N:M       pokec | dblp | dag | er  (instead of --graph)
//   --source=V           BFS/SSSP source (default 0)
//   --iters=K            superstep cap (default: app-dependent)
//   --mode=omp|lock|pipe execution scheme (default lock)
//   --threads=T          worker threads (default 4); --movers=M (default 2)
//   --simd=cpu|mic       lane profile: SSE 4-wide or 512-bit 16-wide
//   --frontier=F         sparse-iteration threshold in [0,1]: push supersteps
//                        whose frontier is below F*n walk the active list
//                        instead of scanning the bitmap (0 forces the dense
//                        scan, 1 forces the list; default 0.05)
//   --direction=D        traversal direction: auto (alpha/beta rule, the
//                        default), push (always top-down), pull (bottom-up
//                        whenever the program and topology allow it)
//   --hetero             run CPU+MIC with hybrid partitioning
//   --ratio=A:B          CPU:MIC workload ratio (default 1:1)
//   --scheme=S           partition scheme for --hetero: continuous | rr |
//                        hybrid (default) | hdrf | dbh — the last two are
//                        the streaming vertex-cut partitioners (owner map =
//                        their master assignment)
//   --partition=FILE     use an existing partitioning file
//   --partition-out=FILE save the computed partitioning
//   --out=FILE           write per-vertex results
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/apps/bfs.hpp"
#include "src/apps/connected_components.hpp"
#include "src/apps/pagerank.hpp"
#include "src/apps/semiclustering.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/toposort.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/core/query_engine.hpp"
#include "src/gen/generators.hpp"
#include "src/graph/io.hpp"
#include "src/partition/partition.hpp"
#include "src/partition/stream_partition.hpp"

namespace {

using namespace phigraph;

struct Options {
  std::string app;
  std::string graph_path;
  std::string gen_spec;
  std::string out_path;
  std::string partition_path;
  std::string partition_out;
  vid_t source = 0;
  int iters = 0;
  core::ExecMode mode = core::ExecMode::kLocking;
  int threads = 4;
  int movers = 2;
  int simd_bytes = simd::kMicSimdBytes;
  double frontier = core::EngineConfig{}.sparse_iteration_threshold;
  core::DirectionMode direction = core::DirectionMode::kAuto;
  bool hetero = false;
  partition::Ratio ratio{1, 1};
  partition::Scheme scheme = partition::Scheme::kHybrid;
  bool serve = false;
  int batch_max = core::EngineConfig{}.serve_batch_max;
  int batch_wait_ms = core::EngineConfig{}.serve_batch_wait_ms;
  int queue_cap = static_cast<int>(core::EngineConfig{}.serve_queue_capacity);
};

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "phigraph_run: %s\n(see header comment for flags)\n",
               msg);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = val("--app")) o.app = *v;
    else if (auto v2 = val("--graph")) o.graph_path = *v2;
    else if (auto v3 = val("--gen")) o.gen_spec = *v3;
    else if (auto v4 = val("--source")) o.source = static_cast<vid_t>(std::stoul(*v4));
    else if (auto v5 = val("--iters")) o.iters = std::stoi(*v5);
    else if (auto v6 = val("--mode")) {
      if (*v6 == "omp") o.mode = core::ExecMode::kOmpStyle;
      else if (*v6 == "lock") o.mode = core::ExecMode::kLocking;
      else if (*v6 == "pipe") o.mode = core::ExecMode::kPipelining;
      else usage("bad --mode");
    } else if (auto v7 = val("--threads")) o.threads = std::stoi(*v7);
    else if (auto v8 = val("--movers")) o.movers = std::stoi(*v8);
    else if (auto v9 = val("--simd")) {
      o.simd_bytes = (*v9 == "cpu") ? simd::kCpuSimdBytes : simd::kMicSimdBytes;
    } else if (auto vf = val("--frontier")) {
      o.frontier = std::stod(*vf);
      if (o.frontier < 0.0 || o.frontier > 1.0)
        usage("bad --frontier, expected a density in [0,1]");
    } else if (auto vd = val("--direction")) {
      if (*vd == "auto") o.direction = core::DirectionMode::kAuto;
      else if (*vd == "push") o.direction = core::DirectionMode::kForcePush;
      else if (*vd == "pull") o.direction = core::DirectionMode::kForcePull;
      else usage("bad --direction (auto|push|pull)");
    } else if (arg == "--serve") o.serve = true;
    else if (auto vb = val("--batch-max")) o.batch_max = std::stoi(*vb);
    else if (auto vw = val("--batch-wait-ms")) o.batch_wait_ms = std::stoi(*vw);
    else if (auto vq = val("--queue-cap")) o.queue_cap = std::stoi(*vq);
    else if (arg == "--hetero") o.hetero = true;
    else if (auto v10 = val("--ratio")) {
      if (std::sscanf(v10->c_str(), "%d:%d", &o.ratio.cpu, &o.ratio.mic) != 2)
        usage("bad --ratio, expected A:B");
    } else if (auto vs = val("--scheme")) {
      if (*vs == "continuous") o.scheme = partition::Scheme::kContinuous;
      else if (*vs == "rr") o.scheme = partition::Scheme::kRoundRobin;
      else if (*vs == "hybrid") o.scheme = partition::Scheme::kHybrid;
      else if (*vs == "hdrf") o.scheme = partition::Scheme::kHdrf;
      else if (*vs == "dbh") o.scheme = partition::Scheme::kDbh;
      else usage("bad --scheme (continuous|rr|hybrid|hdrf|dbh)");
    } else if (auto v11 = val("--partition")) o.partition_path = *v11;
    else if (auto v12 = val("--partition-out")) o.partition_out = *v12;
    else if (auto v13 = val("--out")) o.out_path = *v13;
    else usage(("unknown flag: " + arg).c_str());
  }
  if (o.app.empty() && !o.serve) usage("--app is required");
  if (!o.app.empty() && o.serve) usage("--serve takes queries, not --app");
  if (o.graph_path.empty() && o.gen_spec.empty())
    usage("one of --graph or --gen is required");
  return o;
}

graph::Csr load_graph(const Options& o, bool needs_weights) {
  graph::Csr g;
  if (!o.gen_spec.empty()) {
    char kind[16];
    unsigned long long n = 0, m = 0;
    if (std::sscanf(o.gen_spec.c_str(), "%15[^:]:%llu:%llu", kind, &n, &m) != 3)
      usage("bad --gen, expected KIND:N:M");
    const std::string k = kind;
    if (k == "pokec") g = gen::pokec_like(static_cast<vid_t>(n), m, 1);
    else if (k == "dblp") g = gen::dblp_like(static_cast<vid_t>(n), m, 1);
    else if (k == "dag") g = gen::dag_like(static_cast<vid_t>(n), m, 1);
    else if (k == "er") g = gen::erdos_renyi(static_cast<vid_t>(n), m, 1);
    else usage("bad --gen kind (pokec|dblp|dag|er)");
  } else if (o.graph_path.size() > 4 &&
             o.graph_path.substr(o.graph_path.size() - 4) == ".pgb") {
    g = graph::load_binary(o.graph_path);
  } else if (o.graph_path.size() > 4 &&
             o.graph_path.substr(o.graph_path.size() - 4) == ".adj") {
    g = graph::load_adjacency_list(o.graph_path);
  } else {
    g = graph::load_edge_list(o.graph_path);
  }
  if (needs_weights && !g.has_edge_values()) {
    std::fprintf(stderr, "graph is unweighted; generating random weights\n");
    gen::add_random_weights(g, 7);
  }
  return g;
}

core::EngineConfig make_cfg(const Options& o, int default_iters) {
  core::EngineConfig cfg;
  cfg.mode = o.mode;
  cfg.threads = o.threads;
  cfg.movers = o.movers;
  cfg.simd_bytes = o.simd_bytes;
  cfg.max_supersteps = o.iters > 0 ? o.iters : default_iters;
  cfg.sparse_iteration_threshold = o.frontier;
  cfg.direction_mode = o.direction;
  return cfg;
}

template <typename Program, typename Format>
int run_app(const Options& o, const graph::Csr& g, const Program& prog,
            int default_iters, Format&& format) {
  std::vector<typename Program::vertex_value_t> values;
  int supersteps = 0;
  metrics::SuperstepCounters totals{};
  if (o.hetero) {
    std::vector<Device> owner;
    if (!o.partition_path.empty()) {
      owner = partition::load_partition(o.partition_path);
    } else {
      // All five schemes flow through the k-way dispatcher with k = 2:
      // rank 0 is the CPU, rank 1 the MIC, weighted by --ratio.
      const auto ranks = partition::make_partition_k(
          o.scheme, g, {o.ratio.cpu, o.ratio.mic});
      owner.reserve(ranks.size());
      for (int r : ranks)
        owner.push_back(r == 0 ? Device::Cpu : Device::Mic);
    }
    if (!o.partition_out.empty())
      partition::save_partition(owner, o.partition_out);
    auto cpu_cfg = make_cfg(o, default_iters);
    cpu_cfg.simd_bytes = simd::kCpuSimdBytes;
    auto mic_cfg = make_cfg(o, default_iters);
    mic_cfg.simd_bytes = simd::kMicSimdBytes;
    core::HeteroEngine<Program> engine(g, std::move(owner), prog, cpu_cfg,
                                       mic_cfg);
    auto res = engine.run();
    values = std::move(res.global_values);
    supersteps = res.cpu.supersteps;
    totals = metrics::totals(res.cpu.trace);
  } else {
    auto res = core::run_single(g, prog, make_cfg(o, default_iters));
    values = std::move(res.values);
    supersteps = res.run.supersteps;
    totals = metrics::totals(res.run.trace);
  }
  std::printf(
      "ran %s on %u vertices / %llu edges: %d supersteps "
      "(%llu sparse, %llu dense, %llu pull; %llu direction flips)\n",
      o.app.c_str(), g.num_vertices(),
      static_cast<unsigned long long>(g.num_edges()), supersteps,
      static_cast<unsigned long long>(totals.sparse_supersteps),
      static_cast<unsigned long long>(totals.dense_supersteps),
      static_cast<unsigned long long>(totals.pull_supersteps),
      static_cast<unsigned long long>(totals.direction_flips));
  if (!o.out_path.empty()) {
    std::ofstream out(o.out_path);
    for (vid_t v = 0; v < g.num_vertices(); ++v)
      out << v << ' ' << format(values[v]) << '\n';
    std::printf("wrote %s\n", o.out_path.c_str());
  }
  return 0;
}

// Serving mode: one query per stdin line, answers printed in submission
// order. Compatible queries that arrive within the batch window share one
// bit-parallel run, so piping many sources is much cheaper than running
// phigraph_run once per source.
int run_serve(const Options& o, const graph::Csr& g) {
  core::EngineConfig cfg = make_cfg(o, 10'000);
  cfg.serve_queue_capacity = static_cast<std::size_t>(o.queue_cap);
  cfg.serve_batch_max = o.batch_max;
  cfg.serve_batch_wait_ms = o.batch_wait_ms;
  core::QueryEngine qe(g, cfg);

  std::vector<std::shared_ptr<core::QueryTicket>> tickets;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    char kindbuf[8];
    unsigned long long v = 0;
    if (std::sscanf(line.c_str(), "%7s %llu", kindbuf, &v) != 2)
      usage(("bad query line: " + line).c_str());
    const std::string k = kindbuf;
    core::QueryKind kind;
    if (k == "bfs") kind = core::QueryKind::kBfs;
    else if (k == "sssp") kind = core::QueryKind::kSssp;
    else if (k == "cc") kind = core::QueryKind::kComponent;
    else if (k == "ppr") kind = core::QueryKind::kPpr;
    else usage(("bad query kind (bfs|sssp|cc|ppr): " + k).c_str());
    if (v >= g.num_vertices())
      usage(("query source out of range: " + line).c_str());
    tickets.push_back(qe.submit({kind, static_cast<vid_t>(v)}));
  }

  for (const auto& t : tickets) {
    const auto r = t->get();
    switch (r.kind) {
      case core::QueryKind::kBfs: {
        std::uint64_t reached = 0;
        std::int32_t ecc = 0;
        for (auto lv : r.level)
          if (lv >= 0) { ++reached; ecc = std::max(ecc, lv); }
        std::printf("bfs %u: reached %llu vertices, eccentricity %d", r.source,
                    static_cast<unsigned long long>(reached), ecc);
        break;
      }
      case core::QueryKind::kSssp: {
        std::uint64_t reached = 0;
        for (auto d : r.dist)
          if (d < apps::MsSssp::kInfinity) ++reached;
        std::printf("sssp %u: reached %llu vertices", r.source,
                    static_cast<unsigned long long>(reached));
        break;
      }
      case core::QueryKind::kComponent: {
        std::uint64_t size = 0;
        for (auto m : r.member) size += m;
        std::printf("cc %u: component size %llu", r.source,
                    static_cast<unsigned long long>(size));
        break;
      }
      case core::QueryKind::kPpr:
        std::printf("ppr %u: rank(source) %.6f", r.source,
                    static_cast<double>(r.rank[r.source]));
        break;
    }
    std::printf("  [%d-lane batch, %d supersteps, %.2f ms]\n", r.batch_lanes,
                r.supersteps, r.latency_ms);
  }

  qe.shutdown();
  const auto stats = qe.stats();
  std::printf(
      "served %llu queries in %llu shared runs (p50 %.2f ms, p99 %.2f ms, "
      "max queue depth %llu)\n",
      static_cast<unsigned long long>(stats.jobs),
      static_cast<unsigned long long>(stats.batches),
      static_cast<double>(stats.latency_us.quantile_bound(0.5)) / 1000.0,
      static_cast<double>(stats.latency_us.quantile_bound(0.99)) / 1000.0,
      static_cast<unsigned long long>(stats.max_queue_depth));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  try {
    o = parse(argc, argv);
  } catch (const std::exception&) {
    usage("bad numeric flag value");
  }

  if (o.serve) {
    // Weights up front: a "sssp V" line may arrive at any point and the
    // engine refuses SSSP jobs on an unweighted graph.
    const auto g = load_graph(o, true);
    return run_serve(o, g);
  }
  if (o.app == "pagerank") {
    const auto g = load_graph(o, false);
    return run_app(o, g, apps::PageRank{}, 20,
                   [](float v) { return std::to_string(v); });
  }
  if (o.app == "bfs") {
    const auto g = load_graph(o, false);
    return run_app(o, g, apps::Bfs{o.source}, 10'000,
                   [](std::int32_t v) { return std::to_string(v); });
  }
  if (o.app == "sssp") {
    const auto g = load_graph(o, true);
    return run_app(o, g, apps::Sssp{o.source}, 10'000, [](float v) {
      return v == apps::Sssp::kInfinity ? std::string("inf")
                                        : std::to_string(v);
    });
  }
  if (o.app == "sc") {
    const auto g = load_graph(o, true);
    return run_app(o, g, apps::SemiClustering{}, 8,
                   [](const apps::ClusterList& l) {
                     std::string s;
                     if (l.count > 0) {
                       const auto& c = l.clusters[0];
                       for (std::uint32_t i = 0; i < c.size; ++i)
                         s += (i ? "," : "") + std::to_string(c.members[i]);
                     }
                     return s;
                   });
  }
  if (o.app == "cc") {
    const auto g = load_graph(o, false);
    return run_app(o, g, apps::ConnectedComponents{}, 10'000,
                   [](std::int32_t v) { return std::to_string(v); });
  }
  if (o.app == "toposort") {
    const auto g = load_graph(o, false);
    return run_app(o, g, apps::TopoSort{}, 100'000,
                   [](const apps::TopoValue& v) { return std::to_string(v.order); });
  }
  usage("unknown --app (pagerank|bfs|sssp|sc|cc|toposort)");
}
