// Build scheduling: topological sorting of a dense dependency DAG (the
// paper's §V-B TopoSort workload). The per-vertex `order` value doubles as
// a wave schedule: everything with the same order can build in parallel.
//
//   $ ./build_scheduler [num_targets] [num_dependencies]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/apps/toposort.hpp"
#include "src/core/hetero_engine.hpp"
#include "src/gen/generators.hpp"

int main(int argc, char** argv) {
  using namespace phigraph;

  const vid_t n = argc > 1 ? static_cast<vid_t>(std::atoll(argv[1])) : 2'000;
  const eid_t m = argc > 2 ? static_cast<eid_t>(std::atoll(argv[2])) : 100'000;

  std::printf("generating dependency DAG: %u targets, %llu edges\n", n,
              static_cast<unsigned long long>(m));
  const auto g = gen::dag_like(n, m, /*seed=*/99, /*levels=*/24);

  core::EngineConfig cfg;
  cfg.mode = core::ExecMode::kPipelining;  // dense fan-in: pipelining's home turf
  cfg.simd_bytes = simd::kMicSimdBytes;    // 16-wide integer SIMD reduction
  cfg.threads = 2;
  cfg.movers = 2;

  auto res = core::run_single(g, apps::TopoSort{}, cfg);

  // Group targets into build waves by topological order.
  std::int32_t max_order = 0;
  for (vid_t v = 0; v < n; ++v)
    max_order = std::max(max_order, res.values[v].order);
  std::vector<vid_t> wave_size(static_cast<std::size_t>(max_order) + 1, 0);
  for (vid_t v = 0; v < n; ++v) {
    if (res.values[v].order < 0) {
      std::printf("cycle detected involving target %u!\n", v);
      return 1;
    }
    ++wave_size[static_cast<std::size_t>(res.values[v].order)];
  }

  std::printf("schedule: %d waves over %d supersteps\n", max_order + 1,
              res.run.supersteps);
  vid_t widest = 0;
  for (std::size_t w = 0; w < wave_size.size(); ++w) {
    if (w < 6 || w + 3 > wave_size.size())
      std::printf("  wave %2zu: %u targets buildable in parallel\n", w,
                  wave_size[w]);
    else if (w == 6)
      std::printf("  ...\n");
    widest = std::max(widest, wave_size[w]);
  }
  std::printf("peak parallelism: %u targets; critical path length: %d\n",
              widest, max_order + 1);
  return 0;
}
